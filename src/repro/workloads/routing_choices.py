"""Probabilistic route choices (paper §7: "We are currently studying
the problem of indexing mobile objects with probabilistic route
choices").

The machinery: junctions are the points where route polylines cross;
a vehicle arriving at a junction switches to the crossing route with a
configurable probability (issuing the usual update), otherwise it
continues.  The index itself is unchanged — route choice is workload
behaviour — which is exactly the paper's observation that tentative
future answers simply get revised by the next update.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.model import LinearMotion1D
from repro.twod.routes import Route
from repro.workloads.route_workload import RouteScenario

Point2 = Tuple[float, float]


@dataclass(frozen=True)
class Junction:
    """A crossing point shared by two routes, with both arc positions."""

    point: Point2
    route_a: int
    arc_a: float
    route_b: int
    arc_b: float

    def arc_on(self, route_id: int) -> float:
        if route_id == self.route_a:
            return self.arc_a
        if route_id == self.route_b:
            return self.arc_b
        raise KeyError(f"route {route_id} does not pass this junction")

    def other_route(self, route_id: int) -> int:
        return self.route_b if route_id == self.route_a else self.route_a


def _segment_intersection(
    p1: Point2, p2: Point2, q1: Point2, q2: Point2
) -> Optional[Tuple[float, float]]:
    """Parameters ``(s, t)`` of the proper intersection, if any."""
    dx1, dy1 = p2[0] - p1[0], p2[1] - p1[1]
    dx2, dy2 = q2[0] - q1[0], q2[1] - q1[1]
    denom = dx1 * dy2 - dy1 * dx2
    if abs(denom) < 1e-12:
        return None  # parallel (overlap treated as no junction)
    s = ((q1[0] - p1[0]) * dy2 - (q1[1] - p1[1]) * dx2) / denom
    t = ((q1[0] - p1[0]) * dy1 - (q1[1] - p1[1]) * dx1) / denom
    if -1e-9 <= s <= 1 + 1e-9 and -1e-9 <= t <= 1 + 1e-9:
        return (min(max(s, 0.0), 1.0), min(max(t, 0.0), 1.0))
    return None


def find_junctions(routes: Sequence[Route]) -> List[Junction]:
    """All pairwise crossing points between distinct routes."""
    junctions: List[Junction] = []
    for i, ra in enumerate(routes):
        for rb in routes[i + 1 :]:
            for si in range(ra.segment_count):
                a1, a2 = ra.segment(si)
                offs_a = ra.offsets
                for sj in range(rb.segment_count):
                    b1, b2 = rb.segment(sj)
                    hit = _segment_intersection(a1, a2, b1, b2)
                    if hit is None:
                        continue
                    s, t = hit
                    arc_a = offs_a[si] + s * (offs_a[si + 1] - offs_a[si])
                    offs_b = rb.offsets
                    arc_b = offs_b[sj] + t * (offs_b[sj + 1] - offs_b[sj])
                    point = (
                        a1[0] + s * (a2[0] - a1[0]),
                        a1[1] + s * (a2[1] - a1[1]),
                    )
                    junctions.append(
                        Junction(point, ra.route_id, arc_a, rb.route_id, arc_b)
                    )
    return junctions


class ProbabilisticRouteScenario(RouteScenario):
    """Route scenario where vehicles may turn at junctions.

    When a vehicle's arc position reaches a junction on its route, it
    switches to the crossing route with probability
    ``switch_probability`` (keeping its speed, random direction on the
    new route) — an ordinary update as far as the index is concerned.
    """

    def __init__(
        self,
        routes: List[Route],
        n: int,
        switch_probability: float = 0.5,
        **kwargs,
    ) -> None:
        super().__init__(routes, n, **kwargs)
        if not 0.0 <= switch_probability <= 1.0:
            raise ValueError(
                f"switch probability must be in [0, 1], got {switch_probability}"
            )
        self.switch_probability = switch_probability
        self.junctions = find_junctions(routes)
        self._junctions_by_route: Dict[int, List[Junction]] = {}
        for junction in self.junctions:
            for rid in (junction.route_a, junction.route_b):
                self._junctions_by_route.setdefault(rid, []).append(junction)
        self.switches_taken = 0
        #: oid -> time of the last junction already decided (declined or
        #: taken), so a declined turn is not re-offered every tick.
        self._decided_until: Dict[int, float] = {}

    def _next_junction(
        self, route: Route, motion: LinearMotion1D, after: float
    ) -> Optional[Tuple[float, Junction]]:
        """The first junction the motion reaches strictly after ``after``."""
        best: Optional[Tuple[float, Junction]] = None
        for junction in self._junctions_by_route.get(route.route_id, []):
            arc = junction.arc_on(route.route_id)
            if motion.v == 0:
                continue
            t = motion.time_at(arc)
            if t <= after + 1e-9:
                continue
            if best is None or t < best[0]:
                best = (t, junction)
        return best

    def maybe_switch(self, oid: int, now: float) -> bool:
        """Give the vehicle its junction choice if one is due; returns
        whether a switch happened (used by ticks)."""
        route, motion = self.placements[oid]
        after = max(motion.t0, self._decided_until.get(oid, -math.inf))
        pending = self._next_junction(route, motion, after=after)
        if pending is None or pending[0] > now:
            return False
        t_junction, junction = pending
        self._decided_until[oid] = t_junction
        if self.rng.random() >= self.switch_probability:
            return False
        other_id = junction.other_route(route.route_id)
        other = next(r for r in self.routes if r.route_id == other_id)
        arc = junction.arc_on(other_id)
        direction = 1 if self.rng.random() < 0.5 else -1
        switched = LinearMotion1D(arc, direction * abs(motion.v), t_junction)
        self.network.update(oid, other_id, switched)
        self.placements[oid] = (other, switched)
        self.switches_taken += 1
        return True

    def run_with_choices(self, validate: bool = False):
        """Like :meth:`run` but giving every vehicle junction choices
        each tick before the regular reroutes."""
        heap: List = []
        for oid in range(self.n):
            self._place(oid, now=0.0)
        result_ios: List[int] = []
        for tick in range(1, self.ticks + 1):
            now = float(tick)
            for oid in range(self.n):
                self.maybe_switch(oid, now)
            if tick % max(1, self.ticks // max(1, self.query_instants)) == 0:
                for _ in range(self.queries_per_instant):
                    query = self.random_query(now)
                    self.network.clear_buffers()
                    answer = self.network.query(query)
                    if validate:
                        assert answer == self.exact_answer(query)
                    result_ios.append(len(answer))
        return result_ios
