"""Scenario driver: runs the paper's §5 simulation against an index.

The loop advances time in unit ticks.  Each tick:

1. objects that reached a terrain border since the previous tick are
   reflected (an update: delete + insert, as the paper prescribes);
2. ``updates_per_tick`` randomly chosen objects change speed and/or
   direction (updates);
3. at designated query instants, a batch of random queries runs with
   the buffer pools cleared before each query (the paper's protocol),
   recording per-query I/O.

Border crossings are tracked with a priority queue of exit times, so a
tick costs ``O(updates + crossings)`` rather than ``O(N)``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.model import MobileObject1D
from repro.core.predicates import brute_force_1d
from repro.indexes.base import MobileIndex1D
from repro.workloads.generator import QueryClass, WorkloadConfig, WorkloadGenerator


@dataclass
class ScenarioResult:
    """Aggregated measurements of one scenario run."""

    method: str
    n: int
    query_class: str
    query_ios: List[int] = field(default_factory=list)
    query_answer_sizes: List[int] = field(default_factory=list)
    update_ios: List[int] = field(default_factory=list)
    space_pages: int = 0
    mismatches: int = 0

    @property
    def avg_query_io(self) -> float:
        return sum(self.query_ios) / len(self.query_ios) if self.query_ios else 0.0

    @property
    def avg_update_io(self) -> float:
        return (
            sum(self.update_ios) / len(self.update_ios)
            if self.update_ios
            else 0.0
        )

    @property
    def avg_answer_size(self) -> float:
        if not self.query_answer_sizes:
            return 0.0
        return sum(self.query_answer_sizes) / len(self.query_answer_sizes)


class Scenario:
    """One reproducible simulation run over a mobile-object index."""

    def __init__(
        self,
        config: WorkloadConfig,
        generator: Optional[WorkloadGenerator] = None,
    ) -> None:
        self.config = config
        self.generator = generator or WorkloadGenerator(seed=config.seed)
        self.model = self.generator.model

    def _border_time(self, obj: MobileObject1D) -> float:
        """Absolute time the object reaches a terrain border."""
        target = self.model.terrain.y_max if obj.motion.v > 0 else 0.0
        return obj.motion.time_at(target)

    def run(
        self,
        index: MobileIndex1D,
        query_class: QueryClass,
        validate: bool = False,
    ) -> ScenarioResult:
        """Drive the index through the configured scenario."""
        cfg = self.config
        gen = self.generator
        objects: Dict[int, MobileObject1D] = {
            obj.oid: obj for obj in gen.initial_population(cfg.n)
        }
        # (exit_time, seq, oid, motion identity) — stale entries are skipped.
        self._heap_seq = 0
        border_heap: List = []
        for obj in objects.values():
            self._push_border(border_heap, obj)
        for obj in objects.values():
            index.insert(obj)
        result = ScenarioResult(
            method=index.name, n=cfg.n, query_class=query_class.name
        )
        query_ticks = self._query_ticks()
        self._next_oid = cfg.n
        for tick in range(1, cfg.ticks + 1):
            now = float(tick)
            self._reflect_due(index, objects, border_heap, now, result)
            self._random_updates(index, objects, border_heap, now, result)
            self._churn_population(index, objects, border_heap, now, result)
            if tick in query_ticks:
                self._run_queries(index, objects, query_class, now, result, validate)
        result.space_pages = index.pages_in_use
        return result

    def _query_ticks(self) -> Set[int]:
        cfg = self.config
        if cfg.query_instants <= 0:
            return set()
        step = max(1, cfg.ticks // cfg.query_instants)
        return {min(cfg.ticks, step * (i + 1)) for i in range(cfg.query_instants)}

    def _push_border(self, border_heap, obj: MobileObject1D) -> None:
        self._heap_seq += 1
        heapq.heappush(
            border_heap,
            (self._border_time(obj), self._heap_seq, obj.oid, obj.motion),
        )

    def _reflect_due(self, index, objects, border_heap, now, result) -> None:
        while border_heap and border_heap[0][0] <= now:
            _, _, oid, motion = heapq.heappop(border_heap)
            current = objects.get(oid)
            if current is None or current.motion is not motion:
                continue  # stale: the object updated since this was queued
            replacement = self.generator.reflect(current, now)
            snap = index.snapshot()
            index.update(replacement)
            result.update_ios.append(index.io_cost_since(snap))
            objects[oid] = replacement
            self._push_border(border_heap, replacement)

    def _random_updates(self, index, objects, border_heap, now, result) -> None:
        oids = list(objects)
        for _ in range(min(self.config.updates_per_tick, len(oids))):
            oid = oids[self.generator.rng.randrange(len(oids))]
            replacement = self.generator.random_update(objects[oid], now)
            snap = index.snapshot()
            index.update(replacement)
            result.update_ios.append(index.io_cost_since(snap))
            objects[oid] = replacement
            self._push_border(border_heap, replacement)

    def _churn_population(self, index, objects, border_heap, now, result) -> None:
        """Open-system churn: arrivals and departures (§2 dynamism)."""
        cfg = self.config
        gen = self.generator
        for _ in range(cfg.arrivals_per_tick):
            motion = gen.random_motion(
                gen.rng.uniform(0, self.model.terrain.y_max), now
            )
            newcomer = MobileObject1D(self._next_oid, motion)
            self._next_oid += 1
            snap = index.snapshot()
            index.insert(newcomer)
            result.update_ios.append(index.io_cost_since(snap))
            objects[newcomer.oid] = newcomer
            self._push_border(border_heap, newcomer)
        for _ in range(min(cfg.departures_per_tick, max(0, len(objects) - 1))):
            oid = gen.rng.choice(list(objects))
            snap = index.snapshot()
            index.delete(oid)
            result.update_ios.append(index.io_cost_since(snap))
            del objects[oid]

    def _run_queries(
        self, index, objects, query_class, now, result, validate
    ) -> None:
        for _ in range(self.config.queries_per_instant):
            query = self.generator.query(query_class, now)
            index.clear_buffers()
            snap = index.snapshot()
            answer = index.query(query)
            result.query_ios.append(index.io_cost_since(snap))
            result.query_answer_sizes.append(len(answer))
            if validate:
                expected = brute_force_1d(objects.values(), query)
                if answer != expected:
                    result.mismatches += 1
