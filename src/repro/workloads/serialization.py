"""Saving and loading workloads (populations, traces, queries).

Experiments should be portable: a population generated here can be
written to a plain JSON file, shipped alongside results, and reloaded
bit-exactly.  Formats:

* **population**: ``{"objects": [{"oid", "y0", "v", "t0"}, ...]}``;
* **queries**: ``{"queries": [{"y1", "y2", "t1", "t2"}, ...]}``;
* **trace**: an ordered event list (``insert`` / ``update`` /
  ``delete`` / ``query``) replayable against any index via
  :func:`replay_trace` — the portable form of the differential tests.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Set

from repro.core.model import LinearMotion1D, MobileObject1D
from repro.core.queries import MORQuery1D
from repro.errors import InvalidQueryError
from repro.indexes.base import MobileIndex1D


# -- populations --------------------------------------------------------------


def population_to_json(objects: Iterable[MobileObject1D]) -> str:
    return json.dumps(
        {
            "objects": [
                {
                    "oid": obj.oid,
                    "y0": obj.motion.y0,
                    "v": obj.motion.v,
                    "t0": obj.motion.t0,
                }
                for obj in objects
            ]
        }
    )


def population_from_json(payload: str) -> List[MobileObject1D]:
    data = json.loads(payload)
    try:
        return [
            MobileObject1D(
                int(entry["oid"]),
                LinearMotion1D(
                    float(entry["y0"]), float(entry["v"]), float(entry["t0"])
                ),
            )
            for entry in data["objects"]
        ]
    except (KeyError, TypeError) as exc:
        raise InvalidQueryError(f"malformed population payload: {exc}") from exc


def save_population(path: str, objects: Iterable[MobileObject1D]) -> None:
    with open(path, "w") as handle:
        handle.write(population_to_json(objects))


def load_population(path: str) -> List[MobileObject1D]:
    with open(path) as handle:
        return population_from_json(handle.read())


# -- queries --------------------------------------------------------------------


def queries_to_json(queries: Iterable[MORQuery1D]) -> str:
    return json.dumps(
        {
            "queries": [
                {"y1": q.y1, "y2": q.y2, "t1": q.t1, "t2": q.t2}
                for q in queries
            ]
        }
    )


def queries_from_json(payload: str) -> List[MORQuery1D]:
    data = json.loads(payload)
    try:
        return [
            MORQuery1D(
                float(entry["y1"]), float(entry["y2"]),
                float(entry["t1"]), float(entry["t2"]),
            )
            for entry in data["queries"]
        ]
    except (KeyError, TypeError) as exc:
        raise InvalidQueryError(f"malformed query payload: {exc}") from exc


# -- traces ------------------------------------------------------------------------

#: One trace event as a plain dict; "kind" selects the fields.
TraceEvent = Dict


def trace_to_json(events: Iterable[TraceEvent]) -> str:
    return json.dumps({"events": list(events)})


def trace_from_json(payload: str) -> List[TraceEvent]:
    return json.loads(payload)["events"]


def replay_trace(
    index: MobileIndex1D,
    events: Iterable[TraceEvent],
    collect_answers: bool = True,
) -> List[Set[int]]:
    """Apply a trace to an index; returns the query answers in order.

    Event kinds: ``insert``/``update`` carry ``oid, y0, v, t0``;
    ``delete`` carries ``oid``; ``query`` carries ``y1, y2, t1, t2``.
    """
    answers: List[Set[int]] = []
    for event in events:
        kind = event.get("kind")
        if kind in ("insert", "update"):
            obj = MobileObject1D(
                int(event["oid"]),
                LinearMotion1D(
                    float(event["y0"]), float(event["v"]), float(event["t0"])
                ),
            )
            if kind == "insert":
                index.insert(obj)
            else:
                index.update(obj)
        elif kind == "delete":
            index.delete(int(event["oid"]))
        elif kind == "query":
            answer = index.query(
                MORQuery1D(
                    float(event["y1"]), float(event["y2"]),
                    float(event["t1"]), float(event["t2"]),
                )
            )
            if collect_answers:
                answers.append(answer)
        else:
            raise InvalidQueryError(f"unknown trace event kind {kind!r}")
    return answers
