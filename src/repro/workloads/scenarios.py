"""Production-shaped scenario streams for the soak harness.

The paper's §5 study draws uniform motion; the ROADMAP north-star is a
service carrying real fleets, whose traffic is skewed, correlated and
bursty.  This module generates that shape as *service-level event
streams* — ordered ``register`` / ``report`` / ``deregister`` events a
driver replays against any :class:`~repro.service.ShardedMotionService`
implementation:

* :class:`CityScenario` — vehicles on a route network (built from
  :func:`~repro.workloads.route_workload.grid_network`), flattened onto
  one global arc-length axis so the 1-D service can carry it.  Rush
  hour sweeps a direction bias sinusoidally across the day; flash
  crowds periodically teleport a burst of vehicles to a hotspot
  junction (a mass re-route), and queries concentrate there.
* :class:`GridScenario` — every position and speed is an integer, the
  regime of "Range Reporting for Moving Points on a Grid" (PAPERS.md):
  with integer slopes the trajectories bucket exactly by velocity, and
  :class:`GridBucketOracle` answers MOR queries by a bisect over sorted
  integer intercepts per bucket — an independent grid-exploiting
  baseline for differential checks.
* :class:`ConvoyScenario` — MOIST's school-tracking observation: real
  fleets move in correlated convoys.  Each convoy shares a velocity
  band; members jitter within a bounded fraction of the model's speed
  range, defect between convoys, and whole convoys drift their base
  speed over time.
* :class:`AdversarialSkewScenario` — the worst case for velocity
  sharding and the dual transform at once: every speed inside a single
  :class:`~repro.service.sharding.VelocityRouter` band (one shard takes
  the whole write load) with pathological slope clustering (near-equal
  ``v``, so the Hough-X dual points collapse towards one line), and
  positions packed into a sliver of the terrain.
* :class:`UniformScenario` — the §5 uniform baseline in stream form,
  the control group for everything above.

Every stream owns two private :class:`random.Random` instances — one
for events, one for queries — seeded from the constructor seed, so the
event stream is byte-identical across runs and does not shift when the
driver asks for a different number of queries.
"""

from __future__ import annotations

import abc
import bisect
import heapq
import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.model import LinearMotion1D
from repro.core.queries import MORQuery1D
from repro.workloads.generator import PAPER_V_MAX, PAPER_V_MIN
from repro.workloads.route_workload import grid_network

__all__ = [
    "AdversarialSkewScenario",
    "CityScenario",
    "ConvoyScenario",
    "GridBucketOracle",
    "GridScenario",
    "SCENARIO_NAMES",
    "ScenarioStream",
    "StreamEvent",
    "UniformScenario",
    "build_scenario",
]

#: Seed-mixing constant: the query stream must not perturb the event stream.
_QUERY_SEED_MIX = 0x9E3779B9


@dataclass(frozen=True)
class StreamEvent:
    """One service-level write: the wire format of the soak schedule."""

    kind: str  # "register" | "report" | "deregister"
    oid: int
    y0: float = 0.0
    v: float = 0.0
    t0: float = 0.0

    def as_tuple(self) -> Tuple[str, int, float, float, float]:
        """Canonical tuple form (trace digests hash over ``repr`` of it)."""
        return (self.kind, self.oid, self.y0, self.v, self.t0)


class ScenarioStream(abc.ABC):
    """A deterministic, tick-driven stream of service write events.

    Subclasses implement the motion policy (:meth:`_initial_motion`,
    :meth:`_update_motion`) and may add burst behaviour via
    :meth:`_extra_events`.  The base class owns the shared machinery:
    border reflection through an exit-time heap (``O(updates +
    crossings)`` per tick, the §5 scenario's trick), open-system churn,
    and the bookkeeping dict of every live object's current motion.
    """

    name = "abstract"

    def __init__(
        self,
        n: int,
        seed: int = 0,
        y_max: float = 1000.0,
        v_min: float = PAPER_V_MIN,
        v_max: float = PAPER_V_MAX,
        updates_per_tick: int = 0,
        arrivals_per_tick: int = 0,
        departures_per_tick: int = 0,
        query_horizon: float = 40.0,
    ) -> None:
        if n < 1:
            raise ValueError(f"need at least 1 object, got {n}")
        if not 0 < v_min <= v_max:
            raise ValueError(f"need 0 < v_min <= v_max, got {v_min}, {v_max}")
        self.n = n
        self.seed = seed
        self.y_max = float(y_max)
        self.v_min = float(v_min)
        self.v_max = float(v_max)
        self.updates_per_tick = updates_per_tick
        self.arrivals_per_tick = arrivals_per_tick
        self.departures_per_tick = departures_per_tick
        self.query_horizon = query_horizon
        self.rng = random.Random(seed)
        self.query_rng = random.Random(seed ^ _QUERY_SEED_MIX)
        #: oid -> current motion, as acknowledged by the generated stream.
        self.motions: Dict[int, LinearMotion1D] = {}
        self._next_oid = 0
        self._heap_seq = 0
        self._border_heap: List = []

    # -- model plumbing ----------------------------------------------------

    def model_params(self) -> Dict[str, float]:
        """Constructor kwargs for the service this stream targets."""
        return {"y_max": self.y_max, "v_min": self.v_min, "v_max": self.v_max}

    def _clamp(self, y: float, lo: float = 0.0, hi: Optional[float] = None) -> float:
        hi = self.y_max if hi is None else hi
        return min(max(y, lo), hi)

    def _position(self, oid: int, now: float) -> float:
        return self._clamp(self.motions[oid].position(now))

    # -- event emission (keeps self.motions + the border heap in sync) ----

    def _emit(self, kind: str, oid: int, motion: Optional[LinearMotion1D],
              out: List[StreamEvent]) -> None:
        if kind == "deregister":
            del self.motions[oid]
            out.append(StreamEvent("deregister", oid))
            return
        self.motions[oid] = motion
        self._push_border(oid, motion)
        out.append(StreamEvent(kind, oid, motion.y0, motion.v, motion.t0))

    # -- border reflection -------------------------------------------------

    def _bounds(self, oid: int) -> Tuple[float, float]:
        """The reflection walls for this object (subclasses narrow them)."""
        return (0.0, self.y_max)

    def _push_border(self, oid: int, motion: LinearMotion1D) -> None:
        lo, hi = self._bounds(oid)
        target = hi if motion.v > 0 else lo
        self._heap_seq += 1
        heapq.heappush(
            self._border_heap,
            (motion.time_at(target), self._heap_seq, oid, motion),
        )

    def _reflect_motion(self, oid: int, now: float) -> LinearMotion1D:
        lo, hi = self._bounds(oid)
        motion = self.motions[oid]
        y_now = self._clamp(motion.position(now), lo, hi)
        return LinearMotion1D(y_now, -motion.v, now)

    def _reflect_due(self, now: float, out: List[StreamEvent]) -> None:
        while self._border_heap and self._border_heap[0][0] <= now:
            _, _, oid, motion = heapq.heappop(self._border_heap)
            current = self.motions.get(oid)
            if current is None or current is not motion:
                continue  # stale: updated or departed since this was queued
            self._emit("report", oid, self._reflect_motion(oid, now), out)

    # -- the stream itself -------------------------------------------------

    def initial_events(self, t0: float = 0.0) -> List[StreamEvent]:
        """The ``n`` registration events that open the stream."""
        out: List[StreamEvent] = []
        for _ in range(self.n):
            oid = self._next_oid
            self._next_oid += 1
            self._emit("register", oid, self._initial_motion(oid, t0), out)
        return out

    def tick_events(self, now: float) -> List[StreamEvent]:
        """All write events of one tick, in their application order."""
        out: List[StreamEvent] = []
        self._reflect_due(now, out)
        live = sorted(self.motions)
        for _ in range(min(self.updates_per_tick, len(live))):
            oid = live[self.rng.randrange(len(live))]
            if oid not in self.motions:  # departed earlier this tick
                continue
            self._emit("report", oid, self._update_motion(oid, now), out)
        self._extra_events(now, out)
        for _ in range(self.arrivals_per_tick):
            oid = self._next_oid
            self._next_oid += 1
            self._emit("register", oid, self._arrival_motion(oid, now), out)
        live = sorted(self.motions)
        departures = min(self.departures_per_tick, max(0, len(live) - 1))
        for _ in range(departures):
            oid = live[self.rng.randrange(len(live))]
            while oid not in self.motions:
                oid = live[self.rng.randrange(len(live))]
            self._emit("deregister", oid, None, out)
        return out

    # -- queries (separate rng: never perturbs the event stream) -----------

    def random_query(self, now: float) -> MORQuery1D:
        """A future-window range query shaped like this scenario's load."""
        y1, y2 = self._query_range()
        t1 = now + self.query_rng.uniform(0.0, self.query_horizon)
        t2 = min(
            t1 + self.query_rng.uniform(0.0, self.query_horizon),
            now + self.query_horizon,
        )
        return MORQuery1D(y1, y2, t1, max(t1, t2))

    def _query_range(self) -> Tuple[float, float]:
        length = self.query_rng.uniform(0.0, self.y_max * 0.1)
        y1 = self.query_rng.uniform(0.0, self.y_max)
        return y1, min(y1 + length, self.y_max)

    # -- subclass hooks ----------------------------------------------------

    @abc.abstractmethod
    def _initial_motion(self, oid: int, t0: float) -> LinearMotion1D:
        """Motion of a freshly registered object at stream start."""

    @abc.abstractmethod
    def _update_motion(self, oid: int, now: float) -> LinearMotion1D:
        """A speed/direction change for a live object at ``now``."""

    def _arrival_motion(self, oid: int, now: float) -> LinearMotion1D:
        return self._initial_motion(oid, now)

    def _extra_events(self, now: float, out: List[StreamEvent]) -> None:
        """Scenario-specific bursts (flash crowds, defections)."""


class UniformScenario(ScenarioStream):
    """The §5 uniform baseline as a stream: the control group."""

    name = "uniform"

    def _random_speed(self) -> float:
        speed = self.rng.uniform(self.v_min, self.v_max)
        direction = 1 if self.rng.random() < 0.5 else -1
        return direction * speed

    def _initial_motion(self, oid: int, t0: float) -> LinearMotion1D:
        return LinearMotion1D(
            self.rng.uniform(0.0, self.y_max), self._random_speed(), t0
        )

    def _update_motion(self, oid: int, now: float) -> LinearMotion1D:
        return LinearMotion1D(self._position(oid, now), self._random_speed(), now)


class CityScenario(ScenarioStream):
    """Vehicles on a flattened route network with rush hour and flash
    crowds.

    The network comes from :func:`grid_network` (``lanes`` horizontal +
    ``lanes`` vertical highways); each route's arc-length interval is
    embedded end-to-end on one global 1-D axis (``y_max`` = total
    network length), so route membership is an interval containment and
    a re-route is a coordinate jump — exactly what a motion ``report``
    expresses.  Vehicles reflect at their *route's* ends, not the
    terrain's.

    Rush hour: the probability of travelling in the positive direction
    follows ``0.5 + amplitude·sin(2π·tick/period)`` — the morning wave
    flows one way, the evening wave back.

    Flash crowd: every ``flash_every`` ticks, ``flash_size`` vehicles
    re-route to within ``flash_radius`` of a hotspot junction, and
    (with probability ``hotspot_query_bias``) queries center there too.
    """

    name = "city"

    def __init__(
        self,
        n: int,
        seed: int = 0,
        lanes: int = 4,
        span: float = 1000.0,
        rush_period: int = 24,
        rush_amplitude: float = 0.35,
        flash_every: int = 6,
        flash_size: int = 0,
        flash_radius: float = 15.0,
        hotspot_query_bias: float = 0.5,
        **kwargs,
    ) -> None:
        self.routes = grid_network(lanes=lanes, span=span)
        self.route_offsets: List[float] = []
        total = 0.0
        for route in self.routes:
            self.route_offsets.append(total)
            total += route.length
        if not 0.0 <= rush_amplitude <= 0.5:
            raise ValueError(
                f"rush amplitude must be in [0, 0.5], got {rush_amplitude}"
            )
        super().__init__(n, seed=seed, y_max=total, **kwargs)
        self.rush_period = max(1, rush_period)
        self.rush_amplitude = rush_amplitude
        self.flash_every = flash_every
        self.flash_size = flash_size if flash_size else max(1, n // 50)
        self.flash_radius = flash_radius
        self.hotspot_query_bias = hotspot_query_bias
        #: oid -> route index on the global axis.
        self.route_of: Dict[int, int] = {}
        # Hotspots are junctions: horizontal lane i crosses vertical
        # lane j at arc length = the vertical lane's offset coordinate.
        self._hotspots = self._junction_coordinates(lanes, span)
        self._hotspot = self._hotspots[0] if self._hotspots else total / 2.0
        self.flash_crowds = 0

    def _junction_coordinates(self, lanes: int, span: float) -> List[float]:
        """Global coordinates of every grid junction on every route."""
        crossings = [span * (i + 0.5) / lanes for i in range(lanes)]
        coords = []
        for ridx, route in enumerate(self.routes):
            for s in crossings:
                if 0.0 <= s <= route.length:
                    coords.append(self.route_offsets[ridx] + s)
        return sorted(coords)

    def _bounds(self, oid: int) -> Tuple[float, float]:
        ridx = self.route_of[oid]
        lo = self.route_offsets[ridx]
        return (lo, lo + self.routes[ridx].length)

    def _direction(self, now: float) -> int:
        phase = (now % self.rush_period) / self.rush_period
        positive = 0.5 + self.rush_amplitude * math.sin(2 * math.pi * phase)
        return 1 if self.rng.random() < positive else -1

    def _speed(self, now: float) -> float:
        return self._direction(now) * self.rng.uniform(self.v_min, self.v_max)

    def _place_on_route(self, oid: int, ridx: int, s: float,
                        t0: float) -> LinearMotion1D:
        self.route_of[oid] = ridx
        lo, hi = self._bounds(oid)
        return LinearMotion1D(self._clamp(lo + s, lo, hi), self._speed(t0), t0)

    def _initial_motion(self, oid: int, t0: float) -> LinearMotion1D:
        ridx = self.rng.randrange(len(self.routes))
        return self._place_on_route(
            oid, ridx, self.rng.uniform(0.0, self.routes[ridx].length), t0
        )

    def _update_motion(self, oid: int, now: float) -> LinearMotion1D:
        # Mostly a speed/direction change in place; sometimes a re-route
        # (the vehicle turns onto a crossing highway at a junction).
        if self.rng.random() < 0.15:
            return self._initial_motion(oid, now)
        lo, hi = self._bounds(oid)
        y_now = self._clamp(self.motions[oid].position(now), lo, hi)
        return LinearMotion1D(y_now, self._speed(now), now)

    def _route_at(self, y: float) -> int:
        ridx = bisect.bisect_right(self.route_offsets, y) - 1
        return min(max(ridx, 0), len(self.routes) - 1)

    def _extra_events(self, now: float, out: List[StreamEvent]) -> None:
        if self.flash_every <= 0 or int(now) % self.flash_every != 0:
            return
        # A new incident site draws a crowd: mass re-route to near the
        # hotspot (position jumps are legal reports — GPS rejoins).
        self._hotspot = self._hotspots[
            self.rng.randrange(len(self._hotspots))
        ] if self._hotspots else self._hotspot
        self.flash_crowds += 1
        live = sorted(self.motions)
        for _ in range(min(self.flash_size, len(live))):
            oid = live[self.rng.randrange(len(live))]
            if oid not in self.motions:
                continue
            y = self._hotspot + self.rng.uniform(
                -self.flash_radius, self.flash_radius
            )
            y = self._clamp(y)
            ridx = self._route_at(y)
            lo, hi = self.route_offsets[ridx], (
                self.route_offsets[ridx] + self.routes[ridx].length
            )
            self.route_of[oid] = ridx
            motion = LinearMotion1D(
                self._clamp(y, lo, hi), self._speed(now), now
            )
            self._emit("report", oid, motion, out)

    def _emit(self, kind, oid, motion, out):  # route bookkeeping on churn
        if kind == "deregister":
            self.route_of.pop(oid, None)
        super()._emit(kind, oid, motion, out)

    def _query_range(self) -> Tuple[float, float]:
        if self.query_rng.random() < self.hotspot_query_bias:
            half = self.query_rng.uniform(2.0, self.flash_radius * 3)
            y1 = self._clamp(self._hotspot - half)
            return y1, self._clamp(self._hotspot + half)
        return super()._query_range()


class GridScenario(ScenarioStream):
    """Integer positions and integer velocities on ``[0, grid]``.

    The regime of "Range Reporting for Moving Points on a Grid": every
    trajectory is ``y(t) = c + v·t`` with integer intercept ``c`` and
    integer slope ``v``, ``1 <= |v| <= v_grid``.  All events are issued
    at integer ticks, so positions stay integral forever (reflection
    clamps to the integer walls).  :meth:`make_oracle` builds the
    grid-exploiting baseline over any motion map.
    """

    name = "grid"

    def __init__(
        self,
        n: int,
        seed: int = 0,
        grid: int = 1000,
        v_grid: int = 3,
        **kwargs,
    ) -> None:
        if grid < 2 or v_grid < 1:
            raise ValueError(f"need grid >= 2, v_grid >= 1; got {grid}, {v_grid}")
        kwargs.setdefault("query_horizon", 20.0)
        super().__init__(
            n, seed=seed, y_max=float(grid),
            v_min=1.0, v_max=float(v_grid), **kwargs,
        )
        self.grid = grid
        self.v_grid = v_grid

    def _random_speed(self) -> float:
        speed = self.rng.randint(1, self.v_grid)
        direction = 1 if self.rng.random() < 0.5 else -1
        return float(direction * speed)

    def _initial_motion(self, oid: int, t0: float) -> LinearMotion1D:
        return LinearMotion1D(
            float(self.rng.randint(0, self.grid)), self._random_speed(), t0
        )

    def _update_motion(self, oid: int, now: float) -> LinearMotion1D:
        return LinearMotion1D(self._position(oid, now), self._random_speed(), now)

    def _query_range(self) -> Tuple[float, float]:
        length = self.query_rng.randint(0, max(1, self.grid // 10))
        y1 = self.query_rng.randint(0, self.grid)
        return float(y1), float(min(y1 + length, self.grid))

    def random_query(self, now: float) -> MORQuery1D:
        y1, y2 = self._query_range()
        t1 = float(int(now) + self.query_rng.randint(0, int(self.query_horizon)))
        t2 = min(
            t1 + self.query_rng.randint(0, int(self.query_horizon)),
            now + self.query_horizon,
        )
        return MORQuery1D(y1, y2, t1, max(t1, t2))

    @staticmethod
    def make_oracle(motions: Dict[int, LinearMotion1D]) -> "GridBucketOracle":
        oracle = GridBucketOracle()
        for oid, motion in motions.items():
            oracle.insert(oid, motion)
        return oracle


class GridBucketOracle:
    """Grid-exploiting MOR baseline: bucket by integer slope, bisect on
    intercepts.

    With integer velocities there are only ``2·v_grid`` distinct slopes,
    and inside one bucket the swept-range predicate

        ``[min(y(t1), y(t2)), max(y(t1), y(t2))] ∩ [y1, y2] ≠ ∅``

    is a *contiguous* condition on the intercept ``c = y0 − v·t0``:
    ``y1 − max(v·t1, v·t2) <= c <= y2 − min(v·t1, v·t2)``.  Each bucket
    keeps its intercepts sorted, so a query costs ``O(V log n + k)``
    against brute force's ``O(n)`` — and, more importantly here, it is
    an *independently derived* answer for differential checking.
    """

    def __init__(self) -> None:
        #: v -> {oid: intercept}
        self._buckets: Dict[int, Dict[int, float]] = {}
        self._sorted: Dict[int, List[Tuple[float, int]]] = {}
        self._dirty: Set[int] = set()
        self._slope: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._slope)

    def insert(self, oid: int, motion: LinearMotion1D) -> None:
        v = int(round(motion.v))
        if v != motion.v:
            raise ValueError(f"grid oracle needs integer slopes, got {motion.v}")
        if oid in self._slope:
            self.delete(oid)
        c = motion.y0 - motion.v * motion.t0
        self._buckets.setdefault(v, {})[oid] = c
        self._slope[oid] = v
        self._dirty.add(v)

    update = insert

    def delete(self, oid: int) -> None:
        v = self._slope.pop(oid)
        del self._buckets[v][oid]
        self._dirty.add(v)

    def _intercepts(self, v: int) -> List[Tuple[float, int]]:
        if v in self._dirty:
            self._sorted[v] = sorted(
                (c, oid) for oid, c in self._buckets[v].items()
            )
            self._dirty.discard(v)
        return self._sorted.get(v, [])

    def within(self, y1: float, y2: float, t1: float, t2: float) -> Set[int]:
        answer: Set[int] = set()
        for v in self._buckets:
            a, b = v * t1, v * t2
            lo, hi = y1 - max(a, b), y2 - min(a, b)
            if lo > hi:
                continue
            entries = self._intercepts(v)
            start = bisect.bisect_left(entries, (lo, -1))
            stop = bisect.bisect_right(entries, (hi, float("inf")))
            answer.update(oid for _, oid in entries[start:stop])
        return answer

    def snapshot_at(self, y1: float, y2: float, t: float) -> Set[int]:
        return self.within(y1, y2, t, t)


class ConvoyScenario(ScenarioStream):
    """MOIST schools: convoys sharing a velocity band with bounded jitter.

    ``convoys`` groups are seeded with a direction, a base speed, and a
    spatial center; every member's speed is ``base ± jitter·(v_max −
    v_min)`` (clamped into the model band) and its position starts
    within ``spread`` of the center.  Per tick, some convoys drift
    their base speed (bounded so the jittered band never leaves the
    model's), members re-report around the *current* base, and
    ``defection_rate`` of updated members defect to another convoy —
    a position jump plus adoption of the new band.

    :meth:`convoy_of` and :meth:`convoy_band` expose the ground truth
    the property suite checks against.
    """

    name = "convoy"

    def __init__(
        self,
        n: int,
        seed: int = 0,
        convoys: int = 8,
        jitter: float = 0.05,
        spread: float = 25.0,
        drift: float = 0.02,
        defection_rate: float = 0.02,
        **kwargs,
    ) -> None:
        if not 0.0 < jitter < 0.5:
            raise ValueError(f"jitter must be in (0, 0.5), got {jitter}")
        super().__init__(n, seed=seed, **kwargs)
        self.convoys = max(1, convoys)
        self.jitter = jitter
        self.spread = spread
        self.drift = drift
        self.defection_rate = defection_rate
        band = self.v_max - self.v_min
        self._half = jitter * band
        self._drift_step = drift * band
        #: per convoy: [direction, base speed, center position]
        self._groups: List[List[float]] = []
        for _ in range(self.convoys):
            direction = 1.0 if self.rng.random() < 0.5 else -1.0
            base = self.rng.uniform(
                self.v_min + self._half, self.v_max - self._half
            )
            center = self.rng.uniform(0.0, self.y_max)
            self._groups.append([direction, base, center])
        self._member: Dict[int, int] = {}
        self.defections = 0

    # -- ground truth for the property suite -------------------------------

    def convoy_of(self, oid: int) -> int:
        return self._member[oid]

    def convoy_band(self, cid: int) -> Tuple[float, float]:
        """Current admissible |v| interval for members of convoy ``cid``."""
        base = self._groups[cid][1]
        return (base - self._half, base + self._half)

    # -- motion policy -----------------------------------------------------

    def _member_speed(self, cid: int) -> float:
        direction, base, _ = self._groups[cid]
        speed = base + self.rng.uniform(-self._half, self._half)
        return direction * speed

    def _initial_motion(self, oid: int, t0: float) -> LinearMotion1D:
        cid = self.rng.randrange(self.convoys)
        self._member[oid] = cid
        center = self._groups[cid][2]
        y0 = self._clamp(center + self.rng.uniform(-self.spread, self.spread))
        return LinearMotion1D(y0, self._member_speed(cid), t0)

    def _update_motion(self, oid: int, now: float) -> LinearMotion1D:
        cid = self._member[oid]
        if self.rng.random() < self.defection_rate and self.convoys > 1:
            new = self.rng.randrange(self.convoys - 1)
            cid = new if new < cid else new + 1
            self._member[oid] = cid
            self.defections += 1
            # The defector jumps to its new school's position band.
            center = self._groups[cid][2]
            y0 = self._clamp(
                center + self.rng.uniform(-self.spread, self.spread)
            )
            return LinearMotion1D(y0, self._member_speed(cid), now)
        return LinearMotion1D(
            self._position(oid, now), self._member_speed(cid), now
        )

    def _reflect_motion(self, oid: int, now: float) -> LinearMotion1D:
        # A member bouncing off the wall re-draws within its band (the
        # convoy direction is a bias, not an invariant, once walls hit).
        motion = self.motions[oid]
        cid = self._member[oid]
        _, base, _ = self._groups[cid]
        speed = base + self.rng.uniform(-self._half, self._half)
        sign = -1.0 if motion.v > 0 else 1.0
        return LinearMotion1D(self._position(oid, now), sign * speed, now)

    def tick_events(self, now: float) -> List[StreamEvent]:
        # Whole-school drift happens *before* any member reports, so
        # every event of this tick is drawn against the band that
        # :meth:`convoy_band` declares afterwards (bounded so that
        # base ± half never leaves the model's speed range).
        for group in self._groups:
            step = self.rng.uniform(-self._drift_step, self._drift_step)
            group[1] = min(
                max(group[1] + step, self.v_min + self._half),
                self.v_max - self._half,
            )
            # Centers ride along with the average motion.
            group[2] = self._clamp(group[2] + group[0] * group[1])
        return super().tick_events(now)

    def _emit(self, kind, oid, motion, out):
        if kind == "deregister":
            self._member.pop(oid, None)
        super()._emit(kind, oid, motion, out)


class AdversarialSkewScenario(ScenarioStream):
    """Worst-case skew: one router band, clustered slopes, packed space.

    ``target_shard`` picks which :class:`VelocityRouter` band receives
    *every* object (the band is intersected with the model's
    ``[v_min, v_max]``; if the intersection is empty the band holding
    ``v_max`` is used).  Within the band, speeds cluster around one
    pathological slope (spread ``slope_spread`` of the band width), so
    the Hough-X duals collapse towards a single line — the regime where
    bucketizing by velocity stops helping.  ``position_fraction``
    additionally packs all positions into the low end of the terrain.
    """

    name = "adversarial"

    def __init__(
        self,
        n: int,
        seed: int = 0,
        shards: int = 4,
        target_shard: int = 0,
        slope_spread: float = 0.05,
        position_fraction: float = 0.02,
        **kwargs,
    ) -> None:
        super().__init__(n, seed=seed, **kwargs)
        if shards < 1:
            raise ValueError(f"need at least 1 shard, got {shards}")
        self.shards = shards
        width = self.v_max / shards
        lo = max(target_shard * width, self.v_min)
        hi = min((target_shard + 1) * width, self.v_max)
        if lo >= hi:  # band misses the model range; take the top band
            target_shard = shards - 1
            lo = max(target_shard * width, self.v_min)
            hi = self.v_max
        self.target_shard = target_shard
        #: the |v| interval every object lives in (one router band).
        self.band = (lo, hi)
        centre = (lo + hi) / 2.0
        half = (hi - lo) / 2.0 * min(max(slope_spread, 0.0), 1.0)
        #: the pathological slope cluster inside the band.
        self.cluster = (centre - half, centre + half)
        self.position_fraction = min(max(position_fraction, 1e-4), 1.0)

    def _skewed_speed(self) -> float:
        speed = self.rng.uniform(*self.cluster)
        direction = 1 if self.rng.random() < 0.5 else -1
        return direction * speed

    def _skewed_position(self) -> float:
        return self.rng.uniform(0.0, self.y_max * self.position_fraction)

    def _initial_motion(self, oid: int, t0: float) -> LinearMotion1D:
        return LinearMotion1D(self._skewed_position(), self._skewed_speed(), t0)

    def _update_motion(self, oid: int, now: float) -> LinearMotion1D:
        return LinearMotion1D(self._position(oid, now), self._skewed_speed(), now)

    def _query_range(self) -> Tuple[float, float]:
        # Queries hammer the packed sliver too.
        hot = self.y_max * self.position_fraction
        y1 = self.query_rng.uniform(0.0, hot)
        return y1, min(y1 + self.query_rng.uniform(0.0, hot), self.y_max)


SCENARIO_NAMES: Tuple[str, ...] = (
    "uniform", "city", "grid", "convoy", "adversarial"
)


def build_scenario(
    name: str,
    n: int,
    seed: int = 0,
    updates_per_tick: Optional[int] = None,
    arrivals_per_tick: int = 0,
    departures_per_tick: int = 0,
    shards: int = 4,
    **kwargs,
) -> ScenarioStream:
    """Factory: one canonical instance of each named scenario.

    ``updates_per_tick`` defaults to 2% of ``n`` (the §5 study's 200
    updates per tick at ``n = 10 000``).
    """
    updates = max(1, n // 50) if updates_per_tick is None else updates_per_tick
    common = dict(
        n=n, seed=seed, updates_per_tick=updates,
        arrivals_per_tick=arrivals_per_tick,
        departures_per_tick=departures_per_tick,
        **kwargs,
    )
    if name == "uniform":
        return UniformScenario(**common)
    if name == "city":
        return CityScenario(**common)
    if name == "grid":
        return GridScenario(**common)
    if name == "convoy":
        return ConvoyScenario(**common)
    if name == "adversarial":
        return AdversarialSkewScenario(shards=shards, **common)
    raise ValueError(
        f"unknown scenario {name!r}; expected one of {SCENARIO_NAMES}"
    )
