"""Route-network workload generation and scenario driving (§4.1).

Synthetic networks (grids and hub-and-spoke stars), vehicle populations
over them, and a tick-driven scenario: vehicles reaching a route end
turn around (an update), a random fraction re-routes at junctions every
tick, and rectangle/window queries measure I/O — the 1.5-D analogue of
the §5 study.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.model import LinearMotion1D
from repro.core.queries import MORQuery2D
from repro.twod.routes import Route, RouteNetworkIndex


def grid_network(lanes: int = 4, span: float = 1000.0) -> List[Route]:
    """``lanes`` horizontal plus ``lanes`` vertical highways."""
    routes = []
    rid = 0
    for i in range(lanes):
        offset = span * (i + 0.5) / lanes
        routes.append(Route(rid, ((0.0, offset), (span, offset))))
        rid += 1
        routes.append(Route(rid, ((offset, 0.0), (offset, span))))
        rid += 1
    return routes


def star_network(spokes: int = 6, span: float = 1000.0) -> List[Route]:
    """Hub-and-spoke: radial routes from the centre to the border."""
    import math

    centre = (span / 2.0, span / 2.0)
    routes = []
    for rid in range(spokes):
        angle = 2 * math.pi * rid / spokes
        end = (
            centre[0] + (span / 2.0) * math.cos(angle),
            centre[1] + (span / 2.0) * math.sin(angle),
        )
        routes.append(Route(rid, (centre, end)))
    return routes


@dataclass
class RouteScenarioResult:
    """Aggregated measurements of one route-network scenario run."""

    n: int
    query_ios: List[int] = field(default_factory=list)
    answer_sizes: List[int] = field(default_factory=list)
    update_count: int = 0
    space_pages: int = 0

    @property
    def avg_query_io(self) -> float:
        return (
            sum(self.query_ios) / len(self.query_ios) if self.query_ios else 0.0
        )


class RouteScenario:
    """Tick-driven vehicles-on-a-network simulation."""

    def __init__(
        self,
        routes: List[Route],
        n: int,
        v_min: float = 0.16,
        v_max: float = 1.66,
        ticks: int = 20,
        reroutes_per_tick: int = 4,
        queries_per_instant: int = 8,
        query_instants: int = 2,
        seed: int = 0,
        index_factory=None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.routes = routes
        self.n = n
        self.v_min = v_min
        self.v_max = v_max
        self.ticks = ticks
        self.reroutes_per_tick = reroutes_per_tick
        self.queries_per_instant = queries_per_instant
        self.query_instants = query_instants
        self.rng = rng if rng is not None else random.Random(seed)
        kwargs = {} if index_factory is None else {"index_factory": index_factory}
        self.network = RouteNetworkIndex(routes, v_min, v_max, **kwargs)
        #: oid -> (route, motion)
        self.placements: Dict[int, Tuple[Route, LinearMotion1D]] = {}

    def _random_motion(self, route: Route, s0: float, t0: float) -> LinearMotion1D:
        speed = self.rng.uniform(self.v_min, self.v_max)
        direction = 1 if self.rng.random() < 0.5 else -1
        return LinearMotion1D(s0, direction * speed, t0)

    def _place(self, oid: int, now: float, route: Optional[Route] = None) -> None:
        route = route or self.routes[self.rng.randrange(len(self.routes))]
        motion = self._random_motion(
            route, self.rng.uniform(0, route.length), now
        )
        if oid in self.placements:
            self.network.update(oid, route.route_id, motion)
        else:
            self.network.insert(oid, route.route_id, motion)
        self.placements[oid] = (route, motion)

    def _end_time(self, route: Route, motion: LinearMotion1D) -> float:
        target = route.length if motion.v > 0 else 0.0
        return motion.time_at(target)

    def _turn_around(self, oid: int, now: float) -> None:
        route, motion = self.placements[oid]
        s_now = min(max(motion.position(now), 0.0), route.length)
        bounced = LinearMotion1D(s_now, -motion.v, now)
        self.network.update(oid, route.route_id, bounced)
        self.placements[oid] = (route, bounced)

    def random_query(self, now: float, side_max: float = 250.0) -> MORQuery2D:
        xs = [p[0] for route in self.routes for p in route.points]
        ys = [p[1] for route in self.routes for p in route.points]
        x1 = self.rng.uniform(min(xs), max(xs) - 1)
        y1 = self.rng.uniform(min(ys), max(ys) - 1)
        t1 = now + self.rng.uniform(0, 30)
        return MORQuery2D(
            x1, x1 + self.rng.uniform(5, side_max),
            y1, y1 + self.rng.uniform(5, side_max),
            t1, t1 + self.rng.uniform(0, 30),
        )

    def exact_answer(self, query: MORQuery2D) -> Set[int]:
        """Brute-force oracle over the placements."""
        from repro.rtree.geometry import Rect

        rect = Rect(query.x1, query.y1, query.x2, query.y2)
        answer = set()
        for oid, (route, motion) in self.placements.items():
            for i in range(route.segment_count):
                clipped = route.clip_segment_to_rect(i, rect)
                if clipped is None:
                    continue
                interval = motion.time_interval_in_range(*clipped)
                if interval is None:
                    continue
                if max(interval[0], query.t1) <= min(interval[1], query.t2):
                    answer.add(oid)
                    break
        return answer

    def _disks(self):
        disks = [self.network._sam_disk]
        for index in self.network._route_indexes.values():
            disks.extend(index.disks)
        return disks

    def run(self, validate: bool = False) -> RouteScenarioResult:
        heap: List = []
        seq = 0
        for oid in range(self.n):
            self._place(oid, now=0.0)
        for oid, (route, motion) in self.placements.items():
            seq += 1
            heapq.heappush(heap, (self._end_time(route, motion), seq, oid, motion))
        result = RouteScenarioResult(n=self.n)
        step = max(1, self.ticks // max(1, self.query_instants))
        query_ticks = {
            min(self.ticks, step * (i + 1)) for i in range(self.query_instants)
        }
        mismatches = 0
        for tick in range(1, self.ticks + 1):
            now = float(tick)
            while heap and heap[0][0] <= now:
                _, _, oid, motion = heapq.heappop(heap)
                current = self.placements.get(oid)
                if current is None or current[1] is not motion:
                    continue
                self._turn_around(oid, now)
                result.update_count += 1
                route, bounced = self.placements[oid]
                seq += 1
                heapq.heappush(
                    heap, (self._end_time(route, bounced), seq, oid, bounced)
                )
            for _ in range(self.reroutes_per_tick):
                oid = self.rng.randrange(self.n)
                self._place(oid, now)
                result.update_count += 1
                route, motion = self.placements[oid]
                seq += 1
                heapq.heappush(
                    heap, (self._end_time(route, motion), seq, oid, motion)
                )
            if tick in query_ticks:
                for _ in range(self.queries_per_instant):
                    query = self.random_query(now)
                    self.network.clear_buffers()
                    snaps = [
                        (disk, disk.stats.snapshot())
                        for disk in self._disks()
                    ]
                    answer = self.network.query(query)
                    result.query_ios.append(
                        sum(
                            (disk.stats.snapshot() - snap).total
                            for disk, snap in snaps
                        )
                    )
                    result.answer_sizes.append(len(answer))
                    if validate and answer != self.exact_answer(query):
                        mismatches += 1
        assert mismatches == 0, f"{mismatches} route-query mismatches"
        result.space_pages = self.network.pages_in_use
        return result
