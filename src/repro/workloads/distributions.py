"""Alternative data distributions (paper §7: "a more complete
performance study (using various data distributions)").

The §5 study uses uniform positions, speeds and directions.  These
generators model the paper's motivating domains more closely:

* :class:`GaussianClusters` — positions concentrated around a few hot
  spots (cities along a highway);
* :class:`SkewedSpeeds` — a power-law tilt towards either slow or fast
  traffic within the legal band;
* :class:`RushHour` — directions heavily biased one way (commute flow),
  which stresses the per-sign dual structures asymmetrically;
* :class:`Platoons` — tight speed clusters travelling together, the
  regime where the §3.6 MOR1 structure shines (few crossings).

All distributions produce motions inside the model's speed band, so
every index accepts them unchanged.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.model import LinearMotion1D, MobileObject1D, MotionModel


class Distribution(abc.ABC):
    """A population generator plugging into the workload machinery."""

    name: str = "abstract"

    @abc.abstractmethod
    def motion(
        self, rng: random.Random, model: MotionModel, t0: float
    ) -> LinearMotion1D:
        """Draw one motion valid under ``model``."""

    def population(
        self,
        rng: random.Random,
        model: MotionModel,
        n: int,
        t0: float = 0.0,
    ) -> List[MobileObject1D]:
        return [
            MobileObject1D(oid, self.motion(rng, model, t0))
            for oid in range(n)
        ]


@dataclass
class UniformDistribution(Distribution):
    """The §5 baseline: everything uniform."""

    name: str = "uniform"

    def motion(self, rng, model, t0):
        speed = rng.uniform(model.v_min, model.v_max)
        direction = 1 if rng.random() < 0.5 else -1
        return LinearMotion1D(
            rng.uniform(0, model.terrain.y_max), direction * speed, t0
        )


@dataclass
class GaussianClusters(Distribution):
    """Positions drawn around ``centers`` with the given std deviation."""

    centers: Tuple[float, ...] = (200.0, 500.0, 800.0)
    sigma: float = 40.0
    name: str = "gaussian-clusters"

    def motion(self, rng, model, t0):
        center = self.centers[rng.randrange(len(self.centers))]
        y = min(max(rng.gauss(center, self.sigma), 0.0), model.terrain.y_max)
        speed = rng.uniform(model.v_min, model.v_max)
        direction = 1 if rng.random() < 0.5 else -1
        return LinearMotion1D(y, direction * speed, t0)


@dataclass
class SkewedSpeeds(Distribution):
    """Speeds tilted inside the band by a power law.

    ``shape > 1`` concentrates near ``v_min`` (congested traffic);
    ``shape < 1`` concentrates near ``v_max`` (open road).
    """

    shape: float = 3.0
    name: str = "skewed-speeds"

    def motion(self, rng, model, t0):
        u = rng.random() ** self.shape
        speed = model.v_min + u * (model.v_max - model.v_min)
        direction = 1 if rng.random() < 0.5 else -1
        return LinearMotion1D(
            rng.uniform(0, model.terrain.y_max), direction * speed, t0
        )


@dataclass
class RushHour(Distribution):
    """Directions biased: ``inbound_fraction`` of objects move positive."""

    inbound_fraction: float = 0.9
    name: str = "rush-hour"

    def motion(self, rng, model, t0):
        speed = rng.uniform(model.v_min, model.v_max)
        direction = 1 if rng.random() < self.inbound_fraction else -1
        return LinearMotion1D(
            rng.uniform(0, model.terrain.y_max), direction * speed, t0
        )


@dataclass
class Platoons(Distribution):
    """Convoys: tight speed clusters moving in the same direction.

    Objects split into ``platoons`` groups; within a group, speeds vary
    by at most ``jitter`` of the band width — the few-crossings regime
    of §3.6.
    """

    platoons: int = 5
    jitter: float = 0.02
    name: str = "platoons"

    def motion(self, rng, model, t0):
        band = model.v_max - model.v_min
        platoon = rng.randrange(self.platoons)
        base = model.v_min + band * (platoon + 0.5) / self.platoons
        speed = min(
            max(base + rng.uniform(-1, 1) * self.jitter * band, model.v_min),
            model.v_max,
        )
        return LinearMotion1D(
            rng.uniform(0, model.terrain.y_max), speed, t0
        )


#: Every shipped distribution, for sweeps.
ALL_DISTRIBUTIONS: Sequence[Distribution] = (
    UniformDistribution(),
    GaussianClusters(),
    SkewedSpeeds(),
    RushHour(),
    Platoons(),
)
