"""Planar workload generation and scenario driving (for §4.2 methods).

The 2-D analogue of the §5 machinery: objects uniform on a rectangular
terrain with uniform velocity components, reflecting independently off
each border pair (an update), random motion changes per tick, and
rectangle/window queries.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.model import LinearMotion2D, MobileObject2D, Terrain2D
from repro.core.predicates import brute_force_2d
from repro.core.queries import MORQuery2D
from repro.twod.planar import PlanarModel


@dataclass(frozen=True)
class PlanarQueryClass:
    """Query workload class: max side lengths and time window."""

    name: str
    side_max: float
    tw_max: float


class PlanarWorkloadGenerator:
    """Reproducible generator for planar populations and queries."""

    def __init__(
        self,
        model: Optional[PlanarModel] = None,
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ):
        self.model = model or PlanarModel(Terrain2D(1000.0, 1000.0), v_max=1.66)
        self.rng = rng if rng is not None else random.Random(seed)

    def random_motion(self, x0: float, y0: float, t0: float) -> LinearMotion2D:
        v = self.model.v_max
        return LinearMotion2D(
            x0, y0, self.rng.uniform(-v, v), self.rng.uniform(-v, v), t0
        )

    def initial_population(self, n: int, t0: float = 0.0) -> List[MobileObject2D]:
        terrain = self.model.terrain
        return [
            MobileObject2D(
                oid,
                self.random_motion(
                    self.rng.uniform(0, terrain.x_max),
                    self.rng.uniform(0, terrain.y_max),
                    t0,
                ),
            )
            for oid in range(n)
        ]

    def clamp(self, x: float, y: float) -> tuple:
        terrain = self.model.terrain
        return (
            min(max(x, 0.0), terrain.x_max),
            min(max(y, 0.0), terrain.y_max),
        )

    def random_update(self, obj: MobileObject2D, now: float) -> MobileObject2D:
        x, y = self.clamp(*obj.motion.position(now))
        return MobileObject2D(obj.oid, self.random_motion(x, y, now))

    def reflect(self, obj: MobileObject2D, now: float) -> MobileObject2D:
        """Bounce off whichever border(s) the object has reached."""
        terrain = self.model.terrain
        x, y = self.clamp(*obj.motion.position(now))
        vx, vy = obj.motion.vx, obj.motion.vy
        if (x <= 0 and vx < 0) or (x >= terrain.x_max and vx > 0):
            vx = -vx
        if (y <= 0 and vy < 0) or (y >= terrain.y_max and vy > 0):
            vy = -vy
        return MobileObject2D(obj.oid, LinearMotion2D(x, y, vx, vy, now))

    def query(self, qclass: PlanarQueryClass, now: float) -> MORQuery2D:
        terrain = self.model.terrain
        x1 = self.rng.uniform(0, terrain.x_max)
        y1 = self.rng.uniform(0, terrain.y_max)
        x2 = min(x1 + self.rng.uniform(0, qclass.side_max), terrain.x_max)
        y2 = min(y1 + self.rng.uniform(0, qclass.side_max), terrain.y_max)
        t1 = now + self.rng.uniform(0, qclass.tw_max)
        t2 = min(t1 + self.rng.uniform(0, qclass.tw_max), now + qclass.tw_max)
        return MORQuery2D(x1, x2, y1, y2, t1, max(t1, t2))


#: Roughly 4% / 0.3% selectivity on the default terrain.
LARGE_PLANAR_QUERIES = PlanarQueryClass("large", side_max=250.0, tw_max=60.0)
SMALL_PLANAR_QUERIES = PlanarQueryClass("small", side_max=60.0, tw_max=20.0)


@dataclass
class PlanarScenarioResult:
    """Aggregated measurements of one planar scenario run."""

    method: str
    n: int
    query_ios: List[int] = field(default_factory=list)
    update_count: int = 0
    space_pages: int = 0
    mismatches: int = 0

    @property
    def avg_query_io(self) -> float:
        return (
            sum(self.query_ios) / len(self.query_ios) if self.query_ios else 0.0
        )


class PlanarScenario:
    """Tick-driven simulation against a planar index (§4.2 methods).

    The index must expose ``insert/update/query/clear_buffers/disks``
    (both :class:`~repro.twod.planar.PlanarKDTreeIndex` and
    :class:`~repro.twod.planar.PlanarDecompositionIndex` do).
    """

    def __init__(
        self,
        n: int,
        ticks: int = 30,
        updates_per_tick: int = 5,
        queries_per_instant: int = 10,
        query_instants: int = 3,
        seed: int = 0,
        generator: Optional[PlanarWorkloadGenerator] = None,
    ) -> None:
        self.n = n
        self.ticks = ticks
        self.updates_per_tick = updates_per_tick
        self.queries_per_instant = queries_per_instant
        self.query_instants = query_instants
        self.generator = generator or PlanarWorkloadGenerator(seed=seed)

    def _exit_time(self, obj: MobileObject2D) -> float:
        """First time either coordinate reaches a border."""
        times = []
        terrain = self.generator.model.terrain
        for motion, limit in (
            (obj.motion.x_motion, terrain.x_max),
            (obj.motion.y_motion, terrain.y_max),
        ):
            if motion.v > 0:
                times.append(motion.time_at(limit))
            elif motion.v < 0:
                times.append(motion.time_at(0.0))
        return min(times) if times else math.inf

    def run(
        self,
        index,
        qclass: PlanarQueryClass = LARGE_PLANAR_QUERIES,
        validate: bool = False,
    ) -> PlanarScenarioResult:
        gen = self.generator
        objects: Dict[int, MobileObject2D] = {
            obj.oid: obj for obj in gen.initial_population(self.n)
        }
        heap: List = []
        seq = 0
        for obj in objects.values():
            seq += 1
            heapq.heappush(heap, (self._exit_time(obj), seq, obj.oid, obj.motion))
        for obj in objects.values():
            index.insert(obj)
        result = PlanarScenarioResult(
            method=getattr(index, "name", type(index).__name__), n=self.n
        )
        step = max(1, self.ticks // max(1, self.query_instants))
        query_ticks: Set[int] = {
            min(self.ticks, step * (i + 1)) for i in range(self.query_instants)
        }
        for tick in range(1, self.ticks + 1):
            now = float(tick)
            while heap and heap[0][0] <= now:
                _, _, oid, motion = heapq.heappop(heap)
                current = objects.get(oid)
                if current is None or current.motion is not motion:
                    continue
                replacement = gen.reflect(current, now)
                index.update(replacement)
                objects[oid] = replacement
                result.update_count += 1
                seq += 1
                heapq.heappush(
                    heap,
                    (self._exit_time(replacement), seq, oid, replacement.motion),
                )
            oids = list(objects)
            for _ in range(min(self.updates_per_tick, len(oids))):
                oid = oids[gen.rng.randrange(len(oids))]
                replacement = gen.random_update(objects[oid], now)
                index.update(replacement)
                objects[oid] = replacement
                result.update_count += 1
                seq += 1
                heapq.heappush(
                    heap,
                    (self._exit_time(replacement), seq, oid, replacement.motion),
                )
            if tick in query_ticks:
                for _ in range(self.queries_per_instant):
                    query = gen.query(qclass, now)
                    index.clear_buffers()
                    snaps = [
                        (disk, disk.stats.snapshot()) for disk in index.disks
                    ]
                    answer = index.query(query)
                    result.query_ios.append(
                        sum(
                            (disk.stats.snapshot() - snap).total
                            for disk, snap in snaps
                        )
                    )
                    if validate:
                        expected = brute_force_2d(objects.values(), query)
                        if answer != expected:
                            result.mismatches += 1
        result.space_pages = sum(d.pages_in_use for d in index.disks)
        return result
