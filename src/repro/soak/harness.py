"""The concurrent soak harness: every subsystem at once, under oracles.

One soak run replays a :mod:`repro.workloads.scenarios` event stream
against a :class:`FaultTolerantMotionService` while simultaneously:

* applying interleaved ``register`` / ``report`` / ``deregister``
  writes from ``threads`` worker threads;
* hammering the vectorized ``query_batch`` path (PR 5) from a
  concurrent reader;
* maintaining live subscriptions (PR 4) whose incremental results are
  held to the three-way identity (incremental == naive reevaluation ==
  delta replay) at every check round;
* killing shards mid-write-storm at scheduled operation indexes and
  recovering them through WAL replay + catalog reconciliation (PR 3);
* optionally cycling the whole service through a graceful shutdown and
  ``restore_from_disk()`` cold restart over the durable backend (PR 6),
  asserting the restored catalog converges to the acknowledged one;
* optionally firing the live rebalance controller at scheduled
  quiescent ticks (``rebalances > 0``, band routers only): the skewed
  population is re-cut and migrated mid-soak, and the very next
  differential round must still match every oracle.

Determinism: the *schedule* (every generated event) is a pure function
of the seed, and its SHA-256 digest is reported.  With ``threads=1``
the *trace* — applied-op outcomes plus every subscription delta — is
deterministic too and gets its own digest; the ``soak-smoke`` gate
asserts two runs produce identical digests and zero divergences.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import (
    InvalidMotionError,
    ObjectNotFoundError,
    ShardUnavailableError,
)
from repro.service.continuous import SubscriptionManager
from repro.service.metrics import MetricsRegistry
from repro.service.replication import FaultTolerantMotionService
from repro.soak.oracle import CheckStats, OracleChecker
from repro.workloads.scenarios import (
    GridScenario,
    ScenarioStream,
    StreamEvent,
    build_scenario,
)

__all__ = ["SoakConfig", "SoakReport", "run_soak", "schedule_digest"]

_SUBSCRIPTION_SEED_MIX = 0x85EBCA6B


def schedule_digest(events: Iterable[StreamEvent],
                    running: Optional["hashlib._Hash"] = None):
    """SHA-256 over the canonical tuple form of an event stream."""
    digest = running or hashlib.sha256()
    for event in events:
        digest.update(repr(event.as_tuple()).encode())
    return digest


@dataclass
class SoakConfig:
    """One soak run, fully specified (and fully reproducible).

    ``threads=1`` is the deterministic mode: writes, queries, clock
    advances and checks run in one fixed order.  ``threads>1`` adds a
    concurrent reader thread and partitions each tick's writes
    round-robin across workers — the schedule stays deterministic, the
    interleaving intentionally does not.
    """

    scenario: str = "uniform"
    n: int = 1000
    ticks: int = 10
    updates_per_tick: Optional[int] = None
    arrivals_per_tick: int = 0
    departures_per_tick: int = 0
    shards: int = 4
    replication: int = 2
    method: str = "forest"
    router: str = "hash"
    threads: int = 1
    batch_queries_per_tick: int = 32
    batch_size: int = 16
    subscriptions: int = 8
    proximity_subs: int = 0
    horizon: float = 20.0
    crashes: int = 0
    restarts: int = 0
    rebalances: int = 0
    check_every: int = 2
    queries_per_check: int = 6
    knn_per_check: int = 2
    wal_dir: Optional[str] = None
    fsync: str = "batch:8"
    #: Writes per ``apply_batch`` call.  1 (default) keeps the scalar
    #: per-op write path; >1 routes each worker's slice through the
    #: batched write path in chunks of this size — the statuses trace
    #: is computed from the per-op outcome list, so at size 1 the two
    #: paths must produce byte-identical trace digests.
    write_batch_size: int = 1
    #: Worker-process pool width for the service's parallel query
    #: tier (0 keeps the in-process path; answers are identical
    #: either way).
    workers: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ValueError(f"need at least 1 thread, got {self.threads}")
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.write_batch_size < 1:
            raise ValueError(
                f"write_batch_size must be >= 1, got {self.write_batch_size}"
            )
        if not 1 <= self.replication <= self.shards:
            raise ValueError(
                f"replication must be in [1, {self.shards}], "
                f"got {self.replication}"
            )
        if self.restarts > 0 and not self.wal_dir:
            raise ValueError("--restarts needs --wal-dir (cold restart "
                             "rebuilds the service from durable WALs)")
        if self.crashes > 0 and self.shards < 2:
            raise ValueError("crash injection needs at least 2 shards")
        if self.rebalances > 0 and self.router not in ("velocity", "band"):
            raise ValueError(
                "--rebalances needs a band router "
                "(--router velocity); hash routing has no bands to "
                "re-cut"
            )


@dataclass
class SoakReport:
    """Everything ``BENCH_soak.json`` records about one run."""

    config: Dict[str, object]
    ops: Dict[str, int]
    elapsed_s: float
    write_ops_per_s: float
    latency_ms: Dict[str, Dict[str, float]]
    checks: Dict[str, int]
    divergences: int
    divergence_labels: List[str]
    recovery: Dict[str, int]
    subscription_stats: Dict[str, object]
    schedule_sha256: str
    trace_sha256: Optional[str]
    rebalance: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": "soak",
            "scenario": self.config.get("scenario"),
            "config": self.config,
            "ops": self.ops,
            "throughput": {
                "elapsed_s": round(self.elapsed_s, 4),
                "write_ops_per_s": round(self.write_ops_per_s, 1),
            },
            "latency_ms": self.latency_ms,
            "checks": self.checks,
            "divergences": self.divergences,
            "divergence_labels": self.divergence_labels[:20],
            "recovery": self.recovery,
            "rebalance": self.rebalance,
            "subscriptions": self.subscription_stats,
            "determinism": {
                "schedule_sha256": self.schedule_sha256,
                "trace_sha256": self.trace_sha256,
            },
        }

    def write_json(self, path: str) -> None:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @property
    def ok(self) -> bool:
        return self.divergences == 0

    def render(self) -> str:
        lines = [
            f"soak: scenario={self.config.get('scenario')} "
            f"n={self.config.get('n')} ticks={self.config.get('ticks')} "
            f"threads={self.config.get('threads')}",
            f"  writes: {self.ops}",
            f"  throughput: {self.write_ops_per_s:.0f} write ops/s "
            f"over {self.elapsed_s:.2f}s",
        ]
        for op, pcts in sorted(self.latency_ms.items()):
            lines.append(
                f"  latency {op}: p50={pcts.get('p50', 0.0):.3f}ms "
                f"p99={pcts.get('p99', 0.0):.3f}ms"
            )
        lines.append(f"  checks: {self.checks}")
        lines.append(f"  recovery: {self.recovery}")
        if self.rebalance:
            lines.append(f"  rebalance: {self.rebalance}")
        lines.append(
            f"  divergences: {self.divergences}"
            + (f" {self.divergence_labels[:5]}" if self.divergences else "")
        )
        return "\n".join(lines)


class _CrashPlan:
    """Scheduled shard kills at exact operation indexes within a tick."""

    def __init__(self, config: SoakConfig) -> None:
        self.kills: Dict[int, Tuple[int, int]] = {}  # tick -> (shard, at_op)
        self.recover_at: Dict[int, List[int]] = {}   # tick -> [shards]
        if config.crashes <= 0:
            return
        expected = max(
            1,
            config.updates_per_tick
            if config.updates_per_tick is not None
            else max(1, config.n // 50),
        )
        span = max(2, config.ticks - 1)
        for i in range(config.crashes):
            tick = 1 + round(span * (i + 1) / (config.crashes + 1))
            tick = min(max(tick, 1), config.ticks)
            while tick in self.kills:
                tick = tick % config.ticks + 1
            shard = 1 + i % (config.shards - 1)
            self.kills[tick] = (shard, max(1, expected // 2))
            recover = min(tick + 1, config.ticks)
            self.recover_at.setdefault(recover, []).append(shard)

    def restart_ticks(self, config: SoakConfig) -> List[int]:
        if config.restarts <= 0:
            return []
        ticks = []
        for i in range(config.restarts):
            tick = round(config.ticks * (i + 1) / (config.restarts + 1))
            ticks.append(min(max(tick, 1), config.ticks))
        return sorted(set(ticks))

    def rebalance_ticks(self, config: SoakConfig) -> List[int]:
        """Evenly spaced live-repartitioning ticks (quiescent points:
        the tick's write barrier and subscription drain are behind
        us, the differential round is ahead — so every check sees the
        post-migration state)."""
        if config.rebalances <= 0:
            return []
        ticks = []
        for i in range(config.rebalances):
            tick = round(config.ticks * (i + 1) / (config.rebalances + 1))
            ticks.append(min(max(tick, 1), config.ticks))
        return sorted(set(ticks))


class _CrashTrigger:
    """Fires ``kill_shard`` exactly once when the op counter crosses the
    scheduled index — from whichever worker thread gets there first,
    which with ``threads>1`` lands mid-write-storm (and therefore
    mid-subscription-delivery: listeners run inside the write path)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0
        self._armed: Optional[Tuple[int, int]] = None  # (shard, at_op)
        self.fired: List[int] = []

    def arm(self, shard: int, at_op: int) -> None:
        with self._lock:
            self._count = 0
            self._armed = (shard, at_op)

    def step(self, service: FaultTolerantMotionService) -> None:
        kill = None
        with self._lock:
            if self._armed is None:
                return
            self._count += 1
            if self._count >= self._armed[1]:
                kill = self._armed[0]
                self._armed = None
        if kill is not None:
            service.kill_shard(kill, reason="soak scheduled crash")
            self.fired.append(kill)


def _build_service(config: SoakConfig, scenario: ScenarioStream,
                   metrics: MetricsRegistry) -> FaultTolerantMotionService:
    return FaultTolerantMotionService(
        shards=config.shards,
        replication_factor=config.replication,
        method=config.method,
        router=config.router,
        metrics=metrics,
        wal_dir=config.wal_dir,
        wal_fsync=config.fsync,
        workers=config.workers,
        **scenario.model_params(),
    )


def _subscription_specs(
    config: SoakConfig, scenario: ScenarioStream
) -> List[Tuple]:
    """Deterministic standing-query specs, independent of the streams."""
    import random

    rng = random.Random(config.seed ^ _SUBSCRIPTION_SEED_MIX)
    specs: List[Tuple] = []
    for i in range(config.subscriptions):
        length = rng.uniform(scenario.y_max * 0.02, scenario.y_max * 0.15)
        y1 = rng.uniform(0.0, scenario.y_max - length)
        if i % 2 == 0:
            specs.append(("snapshot", y1, y1 + length))
        else:
            specs.append(("within", y1, y1 + length, config.horizon))
    for _ in range(config.proximity_subs):
        specs.append(("proximity", rng.uniform(
            scenario.y_max * 0.005, scenario.y_max * 0.02
        )))
    return specs


def _subscribe_all(
    manager: SubscriptionManager, specs: Sequence[Tuple]
) -> Dict[int, Tuple[frozenset, List]]:
    """Open every spec; returns sid -> (initial result, delta log)."""
    logs: Dict[int, Tuple[frozenset, List]] = {}
    for spec in specs:
        if spec[0] == "snapshot":
            sid = manager.subscribe_snapshot(spec[1], spec[2])
        elif spec[0] == "within":
            sid = manager.subscribe_within(spec[1], spec[2], spec[3])
        else:
            sid = manager.subscribe_proximity(spec[1])
        logs[sid] = (manager.result(sid), [])
    return logs


def _apply_events(
    service: FaultTolerantMotionService,
    events: Sequence[StreamEvent],
    trigger: _CrashTrigger,
    batch_size: int = 1,
) -> Tuple[Dict[str, int], List[str]]:
    """Apply one slice of writes in order; returns counters + statuses.

    ``batch_size > 1`` routes the slice through ``apply_batch`` in
    chunks, deriving each event's status from its outcome slot; the
    crash trigger still steps once per event (at chunk granularity),
    so scheduled kills keep firing at the same operation counts.
    """
    counts = {
        "registers": 0, "reports": 0, "deregisters": 0,
        "rejected_writes": 0, "workload_errors": 0,
    }
    statuses: List[str] = []
    if batch_size > 1:
        from repro.vector.ops import DeregisterOp, RegisterOp, ReportOp

        for start in range(0, len(events), batch_size):
            chunk = list(events[start:start + batch_size])
            ops = []
            for event in chunk:
                if event.kind == "register":
                    ops.append(
                        RegisterOp(event.oid, event.y0, event.v, event.t0)
                    )
                elif event.kind == "report":
                    ops.append(
                        ReportOp(event.oid, event.y0, event.v, event.t0)
                    )
                else:
                    ops.append(DeregisterOp(event.oid))
            outcomes = service.apply_batch(ops)
            for event, error in zip(chunk, outcomes):
                if error is None:
                    key = {
                        "register": "registers", "report": "reports",
                    }.get(event.kind, "deregisters")
                    counts[key] += 1
                    statuses.append("ok")
                elif isinstance(error, ShardUnavailableError):
                    counts["rejected_writes"] += 1
                    statuses.append("rejected")
                else:
                    counts["workload_errors"] += 1
                    statuses.append("error")
                trigger.step(service)
        return counts, statuses
    for event in events:
        try:
            if event.kind == "register":
                service.register(event.oid, event.y0, event.v, event.t0)
                counts["registers"] += 1
                statuses.append("ok")
            elif event.kind == "report":
                service.report(event.oid, event.y0, event.v, event.t0)
                counts["reports"] += 1
                statuses.append("ok")
            else:
                service.deregister(event.oid)
                counts["deregisters"] += 1
                statuses.append("ok")
        except ShardUnavailableError:
            counts["rejected_writes"] += 1
            statuses.append("rejected")
        except (ObjectNotFoundError, InvalidMotionError):
            # Cascade from an earlier rejected write (e.g. a report for
            # an object whose register never committed): workload-level
            # noise, not an index bug — the oracle only sees the catalog.
            counts["workload_errors"] += 1
            statuses.append("error")
        trigger.step(service)
    return counts, statuses


def _run_batch_queries(
    service: FaultTolerantMotionService,
    queries,
    batch_size: int,
) -> Tuple[int, int]:
    """Issue pre-generated reads through ``query_batch`` in chunks.

    These are load, not checks (they race with writers by design);
    the differential rounds issue their own quiescent batches.
    """
    from repro.service.replication import PartialResult
    from repro.vector.ops import Within

    issued = partial = 0
    ops = [Within(q.y1, q.y2, q.t1, q.t2) for q in queries]
    for start in range(0, len(ops), max(1, batch_size)):
        chunk = ops[start:start + max(1, batch_size)]
        for result in service.query_batch(chunk):
            issued += 1
            if isinstance(result, PartialResult):
                partial += 1
    return issued, partial


def _merge(total: Dict[str, int], part: Dict[str, int]) -> None:
    for key, value in part.items():
        total[key] = total.get(key, 0) + value


def _latency_percentiles(metrics: MetricsRegistry) -> Dict[str, Dict[str, float]]:
    snapshot = metrics.snapshot()
    out: Dict[str, Dict[str, float]] = {}
    for op in ("report", "register", "within", "query_batch"):
        stats = snapshot.get("operations", {}).get(op)
        if stats:
            out[op] = {
                "p50": round(float(stats.get("p50_ms", 0.0)), 4),
                "p99": round(float(stats.get("p99_ms", 0.0)), 4),
            }
    return out


def run_soak(config: SoakConfig) -> SoakReport:
    """Run one full soak; returns the report (never raises on divergence
    — ``report.ok`` / ``report.divergences`` carry the verdict)."""
    scenario = build_scenario(
        config.scenario,
        n=config.n,
        seed=config.seed,
        updates_per_tick=config.updates_per_tick,
        arrivals_per_tick=config.arrivals_per_tick,
        departures_per_tick=config.departures_per_tick,
        shards=config.shards,
    )
    metrics = MetricsRegistry()
    service = _build_service(config, scenario, metrics)
    plan = _CrashPlan(config)
    restart_ticks = set(plan.restart_ticks(config))
    trigger = _CrashTrigger()
    checker = OracleChecker(CheckStats())
    sched_hash = hashlib.sha256()
    trace_hash = hashlib.sha256() if config.threads == 1 else None

    ops_total: Dict[str, int] = {}
    recovery = {
        "crashes": 0, "recoveries": 0, "replayed": 0,
        "reconciled": 0, "restarts": 0, "restored_objects": 0,
    }
    rebalance_ticks = set(plan.rebalance_ticks(config))
    rebalance_stats: Dict[str, object] = {}
    deltas_drained = 0

    pool = (
        ThreadPoolExecutor(max_workers=config.threads + 1)
        if config.threads > 1 else None
    )
    started = time.perf_counter()
    write_ops = 0
    try:
        # -- t = 0: initial population + subscriptions ---------------------
        initial = scenario.initial_events()
        schedule_digest(initial, sched_hash)
        if pool is None:
            counts, statuses = _apply_events(
                service, initial, trigger, config.write_batch_size
            )
            _merge(ops_total, counts)
            if trace_hash is not None:
                trace_hash.update(repr(statuses).encode())
        else:
            slices = [initial[i::config.threads] for i in range(config.threads)]
            futures = [
                pool.submit(
                    _apply_events, service, part, trigger,
                    config.write_batch_size,
                )
                for part in slices if part
            ]
            for future in futures:
                counts, _ = future.result()
                _merge(ops_total, counts)
        write_ops += len(initial)

        manager = SubscriptionManager(service, metrics=metrics)
        specs = _subscription_specs(config, scenario)
        replay_logs = _subscribe_all(manager, specs)

        # -- the ticks -----------------------------------------------------
        for tick in range(1, config.ticks + 1):
            now = float(tick)
            events = scenario.tick_events(now)
            schedule_digest(events, sched_hash)
            queries = [
                scenario.random_query(now)
                for _ in range(config.batch_queries_per_tick)
            ]
            if tick in plan.kills:
                shard, at_op = plan.kills[tick]
                trigger.arm(shard, min(at_op, max(1, len(events))))
                recovery["crashes"] += 1
            if pool is None:
                counts, statuses = _apply_events(
                    service, events, trigger, config.write_batch_size
                )
                _merge(ops_total, counts)
                if trace_hash is not None:
                    trace_hash.update(repr(statuses).encode())
                issued, partial = _run_batch_queries(
                    service, queries, config.batch_size
                )
            else:
                slices = [
                    events[i::config.threads] for i in range(config.threads)
                ]
                reader = pool.submit(
                    _run_batch_queries, service, queries, config.batch_size,
                )
                futures = [
                    pool.submit(
                        _apply_events, service, part, trigger,
                        config.write_batch_size,
                    )
                    for part in slices if part
                ]
                for future in futures:
                    counts, _ = future.result()
                    _merge(ops_total, counts)
                issued, partial = reader.result()
            write_ops += len(events)
            ops_total["batch_queries"] = (
                ops_total.get("batch_queries", 0) + issued
            )
            ops_total["batch_partial"] = (
                ops_total.get("batch_partial", 0) + partial
            )

            # Barrier reached: advance the subscription clock and drain.
            manager.advance(now)
            for sid, (_, log) in replay_logs.items():
                drained = manager.drain_deltas(sid)
                log.extend(drained)
                deltas_drained += len(drained)
                if trace_hash is not None and drained:
                    trace_hash.update(
                        repr([
                            (d.subscription_id, d.kind, d.key, d.time)
                            for d in drained
                        ]).encode()
                    )

            # Scheduled recoveries (WAL replay + reconciliation).
            for shard in plan.recover_at.get(tick, []):
                if shard in service.down_shards():
                    info = service.recover_shard(shard)
                    recovery["recoveries"] += 1
                    recovery["replayed"] += int(info.get("replayed", 0))
                    recovery["reconciled"] += int(info.get("reconciled", 0))

            # Scheduled cold restart over the durable backend.
            if tick in restart_ticks:
                for shard in service.down_shards():
                    info = service.recover_shard(shard)
                    recovery["recoveries"] += 1
                    recovery["replayed"] += int(info.get("replayed", 0))
                    recovery["reconciled"] += int(info.get("reconciled", 0))
                before = service.motion_snapshot()
                manager.close()
                service.close()
                service = _build_service(config, scenario, metrics)
                restored = service.restore_from_disk()
                recovery["restarts"] += 1
                recovery["restored_objects"] += int(
                    restored.get("objects", 0)
                )
                checker.check_restored_catalog(
                    before, service.motion_snapshot()
                )
                manager = SubscriptionManager(service, metrics=metrics)
                manager.advance(now)
                replay_logs = _subscribe_all(manager, specs)
                if trace_hash is not None:
                    trace_hash.update(
                        f"restart@{tick}:{len(before)}".encode()
                    )

            # Scheduled live repartitioning (quiescent, pre-check —
            # the differential round below validates the migrated
            # state against the oracles).
            if tick in rebalance_ticks:
                from repro.service.rebalance import (
                    RebalanceConfig,
                    RebalanceController,
                )

                controller = RebalanceController(
                    service, RebalanceConfig(skew_threshold=1.1)
                )
                result = controller.rebalance_once(force=True)
                rebalance_stats.setdefault(
                    "skew_initial", round(result.skew_before, 4)
                )
                rebalance_stats["skew_final"] = round(
                    result.skew_after, 4
                )
                rebalance_stats["runs"] = (
                    rebalance_stats.get("runs", 0) + 1
                )
                for key, value in (
                    ("planned", result.planned_moves),
                    ("migrated", result.migrated),
                    ("aborted", result.aborted),
                    ("skipped", result.skipped),
                ):
                    rebalance_stats[key] = (
                        rebalance_stats.get(key, 0) + value
                    )
                if trace_hash is not None:
                    trace_hash.update(
                        f"rebalance@{tick}:{result.migrated}:"
                        f"{result.aborted}".encode()
                    )

            # Differential round (quiescent: the barrier is behind us).
            if config.check_every > 0 and tick % config.check_every == 0:
                motions = service.motion_snapshot()
                check_queries = [
                    scenario.random_query(now)
                    for _ in range(config.queries_per_check)
                ]
                knn_probes = [
                    (scenario.query_rng.uniform(0.0, scenario.y_max),
                     1 + scenario.query_rng.randrange(3))
                    for _ in range(config.knn_per_check)
                ]
                checker.check_queries(
                    service, motions, check_queries, now, knn_probes
                )
                if isinstance(scenario, GridScenario):
                    checker.check_grid_oracle(
                        motions,
                        GridScenario.make_oracle(motions),
                        check_queries,
                    )
                checker.check_subscriptions(manager, replay_logs, service)
                if trace_hash is not None:
                    trace_hash.update(
                        repr(sorted(checker.stats.divergences)).encode()
                    )
        manager.close()
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
        service.close()
    elapsed = time.perf_counter() - started

    stats = checker.stats
    return SoakReport(
        config=asdict(config),
        ops=ops_total,
        elapsed_s=elapsed,
        write_ops_per_s=(write_ops / elapsed) if elapsed > 0 else 0.0,
        latency_ms=_latency_percentiles(metrics),
        checks={
            "rounds": stats.rounds,
            "query_checks": stats.query_checks,
            "batch_checks": stats.batch_checks,
            "grid_checks": stats.grid_checks,
            "subscription_checks": stats.subscription_checks,
            "restart_checks": stats.restart_checks,
            "skipped_degraded": stats.skipped_degraded,
        },
        divergences=len(stats.divergences),
        divergence_labels=list(stats.divergences),
        recovery=recovery,
        rebalance=rebalance_stats,
        subscription_stats={
            "count": len(_subscription_specs(config, scenario)),
            "deltas_drained": deltas_drained,
        },
        schedule_sha256=sched_hash.hexdigest(),
        trace_sha256=trace_hash.hexdigest() if trace_hash else None,
    )
