"""Differential oracles for the soak harness.

Three independent sources of truth are compared at every check round:

1. a pure-functional brute force over the service's *authoritative
   catalog* (``motion_snapshot()`` is well-defined even while replicas
   are down, so the oracle never depends on shard health);
2. for the grid scenario, the :class:`GridBucketOracle` — derived by a
   completely different algorithm (velocity buckets + intercept
   bisect), so a shared bug in the swept-range arithmetic cannot hide;
3. for subscriptions, the manager's own ``reevaluate`` naive oracle
   plus the PR 4 delta-replay identity
   (``replay_deltas(initial, log) == result``).

Degraded answers (:class:`PartialResult` while a replica group is
entirely down) are *skipped*, not failed: availability loss is the
documented contract there, and the next healthy round re-checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.model import LinearMotion1D
from repro.core.predicates import matches_1d, matches_mor1
from repro.core.queries import MOR1Query, MORQuery1D
from repro.service.replication import PartialResult
from repro.vector.ops import Nearest, SnapshotAt, Within

__all__ = [
    "OracleChecker",
    "oracle_nearest",
    "oracle_snapshot_at",
    "oracle_within",
]


def oracle_within(
    motions: Dict[int, LinearMotion1D], query: MORQuery1D
) -> Set[int]:
    """Brute-force MOR answer over a motion map."""
    return {
        oid for oid, motion in motions.items() if matches_1d(motion, query)
    }


def oracle_snapshot_at(
    motions: Dict[int, LinearMotion1D], y1: float, y2: float, t: float
) -> Set[int]:
    """Brute-force instantaneous-range answer over a motion map."""
    query = MOR1Query(y1, y2, t)
    return {
        oid for oid, motion in motions.items() if matches_mor1(motion, query)
    }


def oracle_nearest(
    motions: Dict[int, LinearMotion1D], y: float, t: float, k: int
) -> List[Tuple[int, float]]:
    """Exact k-NN over a motion map: sorted by ``(distance, oid)``."""
    ranked = sorted(
        (abs(motion.position(t) - y), oid) for oid, motion in motions.items()
    )
    return [(oid, dist) for dist, oid in ranked[: max(0, k)]]


@dataclass
class CheckStats:
    """Tally of one run's differential verification."""

    rounds: int = 0
    query_checks: int = 0
    batch_checks: int = 0
    grid_checks: int = 0
    subscription_checks: int = 0
    restart_checks: int = 0
    skipped_degraded: int = 0
    divergences: List[str] = field(default_factory=list)

    def diverge(self, label: str) -> None:
        self.divergences.append(label)


class OracleChecker:
    """Runs one differential round against a live service.

    The checker never holds service internals: it reads the acknowledged
    catalog once per round and compares every fresh answer — scalar
    reads, the vectorized ``query_batch`` path, the grid baseline, and
    the subscription identities — against recomputation from that
    catalog.
    """

    def __init__(self, stats: Optional[CheckStats] = None) -> None:
        self.stats = stats or CheckStats()

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _value(answer):
        """Unwrap, flagging degraded answers as unverifiable."""
        if isinstance(answer, PartialResult):
            return None
        return answer

    def _compare_sets(self, label: str, got, expected: Set[int]) -> None:
        value = self._value(got)
        if value is None:
            self.stats.skipped_degraded += 1
            return
        if set(value) != expected:
            extra = sorted(set(value) - expected)[:5]
            missing = sorted(expected - set(value))[:5]
            self.stats.diverge(
                f"{label}: +{extra} -{missing} "
                f"(got {len(set(value))}, want {len(expected)})"
            )

    # -- one round ---------------------------------------------------------

    def check_queries(
        self,
        service,
        motions: Dict[int, LinearMotion1D],
        queries: Sequence[MORQuery1D],
        now: float,
        knn_probes: Sequence[Tuple[float, int]] = (),
    ) -> None:
        """Scalar + batch reads vs brute force over the catalog."""
        self.stats.rounds += 1
        ops = []
        expectations = []
        for query in queries:
            expected = oracle_within(motions, query)
            self.stats.query_checks += 1
            self._compare_sets(
                f"within({query.y1:.1f},{query.y2:.1f},"
                f"{query.t1:.1f},{query.t2:.1f})",
                service.within(query.y1, query.y2, query.t1, query.t2),
                expected,
            )
            ops.append(Within(query.y1, query.y2, query.t1, query.t2))
            expectations.append(("within", expected))
            snap_expected = oracle_snapshot_at(
                motions, query.y1, query.y2, query.t1
            )
            self.stats.query_checks += 1
            self._compare_sets(
                f"snapshot_at({query.y1:.1f},{query.y2:.1f},{query.t1:.1f})",
                service.snapshot_at(query.y1, query.y2, query.t1),
                snap_expected,
            )
            ops.append(SnapshotAt(query.y1, query.y2, query.t1))
            expectations.append(("snapshot_at", snap_expected))
        for y, k in knn_probes:
            expected_knn = oracle_nearest(motions, y, now, k)
            self.stats.query_checks += 1
            got = self._value(service.nearest(y, now, k))
            if got is None:
                self.stats.skipped_degraded += 1
            elif [oid for oid, _ in got] != [oid for oid, _ in expected_knn]:
                self.stats.diverge(
                    f"nearest({y:.1f},k={k}): got {got[:5]} "
                    f"want {expected_knn[:5]}"
                )
            ops.append(Nearest(y, now, k))
            expectations.append(("nearest", expected_knn))
        # The same reads again through the vectorized batch path: the
        # answers must agree with the oracle (and hence with scalar).
        if ops:
            results = service.query_batch(ops)
            for (kind, expected), got in zip(expectations, results):
                self.stats.batch_checks += 1
                if kind == "nearest":
                    value = self._value(got)
                    if value is None:
                        self.stats.skipped_degraded += 1
                    elif [oid for oid, _ in value] != [
                        oid for oid, _ in expected
                    ]:
                        self.stats.diverge(
                            f"batch nearest: got {value[:5]} "
                            f"want {expected[:5]}"
                        )
                else:
                    self._compare_sets(f"batch {kind}", got, expected)

    def check_grid_oracle(
        self,
        motions: Dict[int, LinearMotion1D],
        grid_oracle,
        queries: Sequence[MORQuery1D],
    ) -> None:
        """The velocity-bucket baseline vs brute force (grid scenario)."""
        for query in queries:
            self.stats.grid_checks += 1
            got = grid_oracle.within(query.y1, query.y2, query.t1, query.t2)
            expected = oracle_within(motions, query)
            if got != expected:
                self.stats.diverge(
                    f"grid-oracle within({query.y1},{query.y2},"
                    f"{query.t1},{query.t2}): +{sorted(got - expected)[:5]} "
                    f"-{sorted(expected - got)[:5]}"
                )

    def check_subscriptions(
        self, manager, replay_logs: Dict[int, tuple], service
    ) -> None:
        """The PR 4 three-way identity per live subscription.

        ``replay_logs`` maps sid -> (initial frozenset, [deltas so far]).
        Stale subscriptions (degraded service) are skipped; ``advance``
        re-fires them when the shards return.
        """
        from repro.service.continuous import replay_deltas

        if service.down_shards():
            self.stats.skipped_degraded += 1
            return
        for sid, (initial, deltas) in replay_logs.items():
            if manager.is_stale(sid):
                self.stats.skipped_degraded += 1
                continue
            self.stats.subscription_checks += 1
            incremental = manager.result(sid)
            naive = manager.reevaluate(sid)
            if isinstance(naive, PartialResult):
                self.stats.skipped_degraded += 1
                continue
            if incremental != frozenset(naive):
                self.stats.diverge(
                    f"sub {sid}: incremental {len(incremental)} != "
                    f"naive {len(frozenset(naive))}"
                )
                continue
            try:
                replayed = replay_deltas(initial, deltas)
            except ValueError as error:
                self.stats.diverge(f"sub {sid}: replay inconsistent: {error}")
                continue
            if frozenset(replayed) != incremental:
                self.stats.diverge(
                    f"sub {sid}: delta replay {len(replayed)} != "
                    f"incremental {len(incremental)}"
                )

    def check_restored_catalog(
        self,
        before: Dict[int, LinearMotion1D],
        after: Dict[int, LinearMotion1D],
    ) -> None:
        """Cold-restart convergence: the restored catalog must equal the
        acknowledged pre-shutdown catalog, motion for motion."""
        self.stats.restart_checks += 1
        if set(before) != set(after):
            lost = sorted(set(before) - set(after))[:5]
            invented = sorted(set(after) - set(before))[:5]
            self.stats.diverge(
                f"restore: lost {lost} invented {invented} "
                f"({len(before)} -> {len(after)} objects)"
            )
            return
        for oid, motion in before.items():
            restored = after[oid]
            if (
                restored.y0 != motion.y0
                or restored.v != motion.v
                or restored.t0 != motion.t0
            ):
                self.stats.diverge(
                    f"restore: object {oid} motion {restored} != {motion}"
                )
                return
