"""Long-running concurrent soak harness with differential oracles.

Drives the full stack built in PRs 2–6 at once — replicated sharded
service, durable WALs, live subscriptions, vectorized batch queries,
injected shard crashes and cold restarts — under a production-shaped
:mod:`repro.workloads.scenarios` stream, continuously cross-checking
every answer against independent oracles.  Divergence count must be 0;
everything else (throughput, latency percentiles, recovery counts) is
trend data for ``BENCH_soak.json``.
"""

from repro.soak.harness import (
    SoakConfig,
    SoakReport,
    run_soak,
    schedule_digest,
)
from repro.soak.oracle import (
    OracleChecker,
    oracle_nearest,
    oracle_snapshot_at,
    oracle_within,
)

__all__ = [
    "OracleChecker",
    "SoakConfig",
    "SoakReport",
    "oracle_nearest",
    "oracle_snapshot_at",
    "oracle_within",
    "run_soak",
    "schedule_digest",
]
