"""Benchmark harness: method sweeps and the paper's result tables.

The harness runs the §5 scenario for each (method, N) combination and
collects the four metrics the paper plots:

* Figure 6 — average I/Os per query, 10% query class;
* Figure 7 — average I/Os per query, 1% query class;
* Figure 8 — space consumption in pages;
* Figure 9 — average I/Os per update.

One scenario run yields query I/O for its query class plus space and
update I/O; the benchmarks reuse runs across figures.  Results print as
aligned text tables (rows = N, columns = methods) so the bench output
is directly comparable to the paper's figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.core.model import MotionModel
from repro.indexes.base import MobileIndex1D
from repro.workloads.generator import (
    QueryClass,
    WorkloadConfig,
    WorkloadGenerator,
    paper_model,
)
from repro.workloads.scenario import Scenario, ScenarioResult

#: Builds a fresh index for a run.
MethodFactory = Callable[[MotionModel], MobileIndex1D]


def _as_float(cell: object) -> float | None:
    """``cell`` as a finite chartable number, or ``None`` if it isn't one."""
    if isinstance(cell, bool):
        return None
    try:
        value = float(cell)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None
    return value if math.isfinite(value) else None


@dataclass
class SweepResult:
    """All scenario results of one sweep, indexed by (method, n)."""

    query_class: str
    results: Dict[tuple, ScenarioResult] = field(default_factory=dict)

    def get(self, method: str, n: int) -> ScenarioResult:
        return self.results[(method, n)]

    @property
    def methods(self) -> List[str]:
        return sorted({method for method, _ in self.results})

    @property
    def sizes(self) -> List[int]:
        return sorted({n for _, n in self.results})

    def metric_table(self, metric: str) -> "Table":
        """Build a table of one metric (``avg_query_io`` etc.) by (n, method)."""
        methods = self.methods
        table = Table(headers=["N"] + methods)
        for n in self.sizes:
            row: List[object] = [n]
            for method in methods:
                value = getattr(self.results[(method, n)], metric)
                row.append(round(value, 2) if isinstance(value, float) else value)
            table.rows.append(row)
        return table


@dataclass
class Table:
    """A plain text table, printable in the paper's rows/columns layout."""

    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def render(self, title: str = "") -> str:
        widths = [len(h) for h in self.headers]
        str_rows = [[str(c) for c in row] for row in self.rows]
        for row in str_rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if title:
            lines.append(title)
        lines.append(
            "  ".join(h.rjust(w) for h, w in zip(self.headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in str_rows:
            lines.append(
                "  ".join(c.rjust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def column(self, header: str) -> List[object]:
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def render_chart(
        self, title: str = "", width: int = 50, x_column: int = 0
    ) -> str:
        """ASCII bar chart: one bar per (row, series) pair.

        Turns the figure tables into something eyeballable in a
        terminal, mirroring how the paper presents its line plots —
        each non-x column is a series, bars scaled to the global max.
        """
        series = self.headers[:x_column] + self.headers[x_column + 1 :]
        values = []
        for row in self.rows:
            cells = row[:x_column] + row[x_column + 1 :]
            values.extend(
                v for v in (_as_float(c) for c in cells) if v is not None
            )
        top = max(values, default=0.0)
        if top <= 0:
            top = 1.0
        lines = []
        if title:
            lines.append(title)
        label_width = max(
            (len(f"{row[x_column]} {name}") for row in self.rows
             for name in series),
            default=8,
        )
        for row in self.rows:
            x_value = row[x_column]
            cells = row[:x_column] + row[x_column + 1 :]
            for name, cell in zip(series, cells):
                value = _as_float(cell)
                label = f"{x_value} {name}".ljust(label_width)
                if value is None:
                    # Non-numeric cell: no bar, just the value verbatim.
                    lines.append(f"{label} | {cell}")
                    continue
                bar = "#" * max(1, round(width * value / top))
                lines.append(f"{label} |{bar} {cell}")
            lines.append("")
        return "\n".join(lines).rstrip()

    def to_csv(self) -> str:
        """Comma-separated rendering (header line + one line per row)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def save_csv(self, path: str) -> None:
        """Write :meth:`to_csv` output to ``path``."""
        with open(path, "w", newline="") as handle:
            handle.write(self.to_csv())


def run_sweep(
    methods: Dict[str, MethodFactory],
    sizes: Sequence[int],
    query_class: QueryClass,
    ticks: int = 60,
    query_instants: int = 5,
    queries_per_instant: int = 20,
    update_rate: float = 0.002,
    seed: int = 0,
    validate: bool = False,
) -> SweepResult:
    """Run the scenario for every (method, N) pair.

    ``update_rate`` scales the paper's 200-updates-per-tick to the
    population size (200 / 100k = 0.2% per tick).
    """
    sweep = SweepResult(query_class=query_class.name)
    for n in sizes:
        config = WorkloadConfig(
            n=n,
            updates_per_tick=max(1, int(n * update_rate)),
            ticks=ticks,
            query_instants=query_instants,
            queries_per_instant=queries_per_instant,
            seed=seed,
        )
        for name, factory in methods.items():
            generator = WorkloadGenerator(seed=seed)
            scenario = Scenario(config, generator)
            index = factory(scenario.model)
            result = scenario.run(index, query_class, validate=validate)
            sweep.results[(name, n)] = result
    return sweep


def default_methods(
    forest_cs: Sequence[int] = (4, 6, 8),
    include_segment_baseline: bool = True,
) -> Dict[str, MethodFactory]:
    """The paper's §5 method set: segments-R*, dual kd-tree, B+-forest."""
    from repro.indexes.dual_point import DualKDTreeIndex
    from repro.indexes.hough_y_forest import HoughYForestIndex
    from repro.indexes.segment_rtree import SegmentRTreeIndex

    methods: Dict[str, MethodFactory] = {}
    if include_segment_baseline:
        methods["segment-rstar"] = lambda m: SegmentRTreeIndex(m)
    methods["dual-kdtree"] = lambda m: DualKDTreeIndex(m)
    for c in forest_cs:
        methods[f"forest-c{c}"] = (
            lambda m, c=c: HoughYForestIndex(m, c=c)
        )
    return methods
