"""Benchmark harness reproducing the paper's §5 figures."""

from repro.bench.harness import (
    MethodFactory,
    SweepResult,
    Table,
    default_methods,
    run_sweep,
)

__all__ = [
    "MethodFactory",
    "SweepResult",
    "Table",
    "default_methods",
    "run_sweep",
]
