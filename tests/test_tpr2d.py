"""Unit tests for the planar TPR-tree and MovingBox geometry."""

import random

import pytest

from repro.core import LinearMotion2D, MORQuery2D, MobileObject2D, Terrain2D
from repro.core import brute_force_2d
from repro.errors import DuplicateObjectError, ObjectNotFoundError
from repro.twod import PlanarModel, PlanarTPRTreeIndex
from repro.twod.tpr2d import MovingBox

MODEL = PlanarModel(Terrain2D(1000.0, 1000.0), v_max=2.0)


def motion(x0, y0, vx, vy, t0=0.0):
    return LinearMotion2D(x0, y0, vx, vy, t0)


class TestMovingBox:
    def test_of_motion_is_a_point(self):
        box = MovingBox.of_motion(motion(10, 20, 1.0, -0.5), t_ref=0.0)
        assert box.x.bounds_at(0.0) == (10.0, 10.0)
        assert box.y.bounds_at(10.0) == (15.0, 15.0)

    def test_union_conservative_both_axes(self):
        a = MovingBox.of_motion(motion(0, 0, 1.0, 1.0), 0.0)
        b = MovingBox.of_motion(motion(100, 50, -1.0, 2.0), 0.0)
        u = a.union(b)
        for t in (0.0, 10.0, 100.0):
            for child in (a, b):
                for axis in ("x", "y"):
                    c_lo, c_hi = getattr(child, axis).bounds_at(t)
                    u_lo, u_hi = getattr(u, axis).bounds_at(t)
                    assert u_lo <= c_lo and c_hi <= u_hi

    def test_may_meet_requires_simultaneity(self):
        # Passes the x-range during [0, 10] and the y-range during
        # [20, 30]: the box (a point here) must NOT meet the query.
        box = MovingBox.of_motion(motion(0, -20, 1.0, 1.0), 0.0)
        assert not box.may_meet(MORQuery2D(0, 10, 0, 10, 0, 30))
        # Slow x keeps the windows overlapping.
        slow = MovingBox.of_motion(motion(0, -20, 0.2, 1.0), 0.0)
        assert slow.may_meet(MORQuery2D(0, 10, 0, 10, 0, 30))

    def test_area(self):
        a = MovingBox.of_motion(motion(0, 0, 1.0, 1.0), 0.0)
        b = MovingBox.of_motion(motion(10, 10, -1.0, -1.0), 0.0)
        u = a.union(b)
        assert u.area_at(0.0) == pytest.approx(100.0)
        # Bounds converge, cross and re-diverge; area stays >= 0.
        assert u.area_at(5.0) >= 0.0


class TestPlanarTPRTree:
    def test_matches_brute_force_static(self):
        rng = random.Random(61)
        objects = [
            MobileObject2D(
                oid,
                motion(
                    rng.uniform(0, 1000), rng.uniform(0, 1000),
                    rng.uniform(-2, 2), rng.uniform(-2, 2),
                    rng.uniform(0, 20),
                ),
            )
            for oid in range(250)
        ]
        tpr = PlanarTPRTreeIndex(MODEL, page_capacity=8)
        for obj in objects:
            tpr.insert(obj)
        for _ in range(25):
            x1 = rng.uniform(0, 850)
            y1 = rng.uniform(0, 850)
            t1 = 20 + rng.uniform(0, 40)
            query = MORQuery2D(x1, x1 + 150, y1, y1 + 150, t1, t1 + 20)
            assert tpr.query(query) == brute_force_2d(objects, query)

    def test_errors_and_capacity(self):
        tpr = PlanarTPRTreeIndex(MODEL, page_capacity=8)
        obj = MobileObject2D(1, motion(1, 1, 1.0, 1.0))
        tpr.insert(obj)
        with pytest.raises(DuplicateObjectError):
            tpr.insert(obj)
        with pytest.raises(ObjectNotFoundError):
            tpr.delete(2)
        with pytest.raises(ValueError):
            PlanarTPRTreeIndex(MODEL, page_capacity=2)

    def test_delete_everything(self):
        rng = random.Random(67)
        tpr = PlanarTPRTreeIndex(MODEL, page_capacity=8)
        for oid in range(120):
            tpr.insert(
                MobileObject2D(
                    oid,
                    motion(
                        rng.uniform(0, 1000), rng.uniform(0, 1000),
                        rng.uniform(-2, 2), rng.uniform(-2, 2),
                    ),
                )
            )
        order = list(range(120))
        rng.shuffle(order)
        for oid in order:
            tpr.delete(oid)
        assert len(tpr) == 0
        assert tpr.pages_in_use == 1
