"""Hypothesis stateful machines for the core disk structures.

Rule-based state machines drive each structure through arbitrary
interleavings of its operations while a pure-Python model shadows it;
invariants are re-checked after every step.  This is the strongest
correctness net in the suite — hypothesis shrinks any divergence to a
minimal operation sequence.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.bptree import BPlusTree
from repro.interval import IntervalTree
from repro.io_sim import DiskSimulator
from repro.kdtree import KDTree, Orthotope
from repro.rtree import Rect, RStarTree

KEYS = st.integers(min_value=0, max_value=200)
COORDS = st.floats(
    min_value=0, max_value=100, allow_nan=False, allow_infinity=False
)


class BPlusTreeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tree = BPlusTree(DiskSimulator(), leaf_capacity=4,
                              internal_capacity=4)
        self.model = {}

    @rule(key=KEYS)
    def insert(self, key):
        if key in self.model:
            return
        self.tree.insert(key, key * 3)
        self.model[key] = key * 3

    @rule(key=KEYS)
    def delete(self, key):
        if key not in self.model:
            return
        assert self.tree.delete(key) == self.model.pop(key)

    @rule(lo=KEYS, hi=KEYS)
    def range_search(self, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        expected = [self.model[k] for k in sorted(self.model) if lo <= k <= hi]
        assert self.tree.range_search(lo, hi) == expected

    @invariant()
    def sizes_match(self):
        assert len(self.tree) == len(self.model)

    @invariant()
    def structure_sound(self):
        self.tree.check_invariants()


class RStarMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tree = RStarTree(DiskSimulator(), leaf_capacity=4,
                              internal_capacity=4)
        self.model = {}
        self.next_id = 0

    @rule(x=COORDS, y=COORDS, w=COORDS, h=COORDS)
    def insert(self, x, y, w, h):
        rect = Rect(x, y, x + w / 10, y + h / 10)
        self.tree.insert(rect, self.next_id)
        self.model[self.next_id] = rect
        self.next_id += 1

    @precondition(lambda self: self.model)
    @rule(pick=st.randoms(use_true_random=False))
    def delete(self, pick):
        oid = pick.choice(sorted(self.model))
        self.tree.delete(oid)
        del self.model[oid]

    @rule(x=COORDS, y=COORDS, w=COORDS, h=COORDS)
    def window_query(self, x, y, w, h):
        window = Rect(x, y, x + w, y + h)
        expected = {
            oid for oid, r in self.model.items() if r.intersects(window)
        }
        assert set(self.tree.search_rect(window)) == expected

    @invariant()
    def structure_sound(self):
        self.tree.check_invariants()


class KDTreeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tree = KDTree(DiskSimulator(), dims=2, leaf_capacity=4,
                           directory_capacity=8)
        self.model = {}
        self.next_id = 0

    @rule(x=COORDS, y=COORDS)
    def insert(self, x, y):
        self.tree.insert((x, y), self.next_id)
        self.model[self.next_id] = (x, y)
        self.next_id += 1

    @precondition(lambda self: self.model)
    @rule(pick=st.randoms(use_true_random=False))
    def delete(self, pick):
        oid = pick.choice(sorted(self.model))
        self.tree.delete(oid)
        del self.model[oid]

    @rule(x=COORDS, y=COORDS, w=COORDS, h=COORDS)
    def box_query(self, x, y, w, h):
        box = Orthotope((x, y), (x + w, y + h))
        expected = {
            oid for oid, p in self.model.items() if box.contains(p)
        }
        assert {oid for _, oid in self.tree.search(box)} == expected

    @invariant()
    def structure_sound(self):
        self.tree.check_invariants()


class IntervalMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tree = IntervalTree(DiskSimulator(), leaf_capacity=4)
        self.model = {}  # handle -> (left, right, payload)
        self.next_id = 0

    @rule(a=COORDS, b=COORDS)
    def insert(self, a, b):
        left, right = min(a, b), max(a, b)
        handle = self.tree.insert(left, right, self.next_id)
        self.model[handle] = (left, right, self.next_id)
        self.next_id += 1

    @precondition(lambda self: self.model)
    @rule(pick=st.randoms(use_true_random=False))
    def delete(self, pick):
        handle = pick.choice(sorted(self.model))
        _, _, payload = self.model.pop(handle)
        assert self.tree.delete(handle) == payload

    @rule(a=COORDS, b=COORDS)
    def overlap_query(self, a, b):
        ql, qh = min(a, b), max(a, b)
        expected = sorted(
            payload
            for (left, right, payload) in self.model.values()
            if left <= qh and right >= ql
        )
        assert sorted(self.tree.overlapping(ql, qh)) == expected

    @invariant()
    def structure_sound(self):
        self.tree.check_invariants()


COMMON = settings(max_examples=12, stateful_step_count=40, deadline=None)

TestBPlusTreeStateful = BPlusTreeMachine.TestCase
TestBPlusTreeStateful.settings = COMMON
TestRStarStateful = RStarMachine.TestCase
TestRStarStateful.settings = COMMON
TestKDTreeStateful = KDTreeMachine.TestCase
TestKDTreeStateful.settings = COMMON
TestIntervalStateful = IntervalMachine.TestCase
TestIntervalStateful.settings = COMMON
