"""Tests for the 1.5-D route network and the planar (2-D) methods."""

import math
import random

import pytest

from repro.core import (
    LinearMotion1D,
    LinearMotion2D,
    MORQuery2D,
    MobileObject2D,
    Terrain2D,
    brute_force_2d,
    matches_2d,
)
from repro.errors import (
    DuplicateObjectError,
    InvalidMotionError,
    ObjectNotFoundError,
)
from repro.rtree import Rect
from repro.twod import (
    PlanarDecompositionIndex,
    PlanarKDTreeIndex,
    PlanarModel,
    PlanarTPRTreeIndex,
    Route,
    RouteNetworkIndex,
    axis_wedge,
)
from repro.core.queries import MORQuery1D


class TestRoute:
    L_ROUTE = Route(1, ((0.0, 0.0), (10.0, 0.0), (10.0, 10.0)))

    def test_validation(self):
        with pytest.raises(InvalidMotionError):
            Route(1, ((0.0, 0.0),))
        with pytest.raises(InvalidMotionError):
            Route(1, ((0.0, 0.0), (0.0, 0.0)))

    def test_arc_length(self):
        assert self.L_ROUTE.length == 20.0
        assert self.L_ROUTE.offsets == (0.0, 10.0, 20.0)

    def test_position_at(self):
        assert self.L_ROUTE.position_at(5.0) == (5.0, 0.0)
        assert self.L_ROUTE.position_at(10.0) == (10.0, 0.0)
        assert self.L_ROUTE.position_at(15.0) == (10.0, 5.0)
        assert self.L_ROUTE.position_at(-3.0) == (0.0, 0.0)  # clamped
        assert self.L_ROUTE.position_at(99.0) == (10.0, 10.0)

    def test_clip_segment(self):
        rect = Rect(2.0, -1.0, 6.0, 1.0)
        assert self.L_ROUTE.clip_segment_to_rect(0, rect) == (2.0, 6.0)
        assert self.L_ROUTE.clip_segment_to_rect(1, rect) is None
        # Diagonal segment clipping.
        diag = Route(2, ((0.0, 0.0), (10.0, 10.0)))
        lo, hi = diag.clip_segment_to_rect(0, Rect(0, 0, 5, 5))
        assert lo == 0.0
        assert hi == pytest.approx(math.dist((0, 0), (5, 5)))


def make_network():
    routes = [
        Route(1, ((0.0, 0.0), (100.0, 0.0))),  # horizontal highway
        Route(2, ((50.0, -50.0), (50.0, 50.0))),  # vertical highway
        Route(3, ((0.0, 40.0), (30.0, 40.0), (30.0, 80.0))),  # L-shaped
    ]
    return RouteNetworkIndex(routes, v_min=0.1, v_max=2.0)


class TestRouteNetworkIndex:
    def test_network_validation(self):
        with pytest.raises(InvalidMotionError):
            RouteNetworkIndex([], 0.1, 2.0)
        route = Route(1, ((0.0, 0.0), (1.0, 0.0)))
        with pytest.raises(DuplicateObjectError):
            RouteNetworkIndex([route, route], 0.1, 2.0)

    def test_insert_and_query(self):
        net = make_network()
        # Object on route 1 moving right, starting at arc length 10.
        net.insert(1, 1, LinearMotion1D(10.0, 1.0, 0.0))
        # Object on route 2 moving up from the bottom.
        net.insert(2, 2, LinearMotion1D(0.0, 1.0, 0.0))
        # Query a box around (50, 0) for the near future.
        query = MORQuery2D(40.0, 60.0, -5.0, 5.0, 30.0, 50.0)
        # Object 1 is at x=40..60 during t in [30, 50]; y=0 inside box.
        # Object 2 is at y in [-20, 0]=arc 30..50 -> y=-20..0, position
        # (50, y): reaches y >= -5 at t=45 -> inside.
        assert net.query(query) == {1, 2}

    def test_route_membership_errors(self):
        net = make_network()
        with pytest.raises(ObjectNotFoundError):
            net.insert(1, 99, LinearMotion1D(0.0, 1.0))
        net.insert(1, 1, LinearMotion1D(0.0, 1.0))
        with pytest.raises(DuplicateObjectError):
            net.insert(1, 2, LinearMotion1D(0.0, 1.0))
        with pytest.raises(ObjectNotFoundError):
            net.delete(42)

    def test_update_moves_object_between_routes(self):
        net = make_network()
        net.insert(1, 1, LinearMotion1D(10.0, 1.0, 0.0))
        net.update(1, 3, LinearMotion1D(0.0, 1.0, 0.0))
        assert len(net) == 1
        # Now on route 3: at t=10 it is at arc 10 -> (10, 40).
        query = MORQuery2D(5.0, 15.0, 35.0, 45.0, 10.0, 10.0)
        assert net.query(query) == {1}

    def test_queries_match_brute_force_over_routes(self):
        net = make_network()
        rng = random.Random(55)
        placements = {}
        for oid in range(120):
            route_id = rng.choice([1, 2, 3])
            route = net.routes[route_id]
            s0 = rng.uniform(0, route.length)
            v = rng.choice([-1, 1]) * rng.uniform(0.1, 2.0)
            motion = LinearMotion1D(s0, v, 0.0)
            net.insert(oid, route_id, motion)
            placements[oid] = (route, motion)
        for _ in range(40):
            x1 = rng.uniform(-10, 90)
            y1 = rng.uniform(-60, 70)
            query = MORQuery2D(
                x1, x1 + rng.uniform(5, 40), y1, y1 + rng.uniform(5, 40),
                rng.uniform(0, 20), rng.uniform(20, 40),
            )
            expected = set()
            rect = Rect(query.x1, query.y1, query.x2, query.y2)
            for oid, (route, motion) in placements.items():
                for i in range(route.segment_count):
                    clipped = route.clip_segment_to_rect(i, rect)
                    if clipped is None:
                        continue
                    interval = motion.time_interval_in_range(*clipped)
                    if interval is None:
                        continue
                    if max(interval[0], query.t1) <= min(interval[1], query.t2):
                        expected.add(oid)
                        break
            assert net.query(query) == expected

    def test_space_and_buffers(self):
        net = make_network()
        assert net.pages_in_use > 0
        net.clear_buffers()


PLANAR_MODEL = PlanarModel(Terrain2D(1000.0, 1000.0), v_max=2.0)


def random_planar_objects(rng, n):
    objects = []
    for oid in range(n):
        motion = LinearMotion2D(
            x0=rng.uniform(0, 1000),
            y0=rng.uniform(0, 1000),
            vx=rng.uniform(-2, 2),
            vy=rng.uniform(-2, 2),
            t0=rng.uniform(0, 20),
        )
        objects.append(MobileObject2D(oid, motion))
    return objects


def random_planar_queries(rng, n):
    queries = []
    for _ in range(n):
        x1 = rng.uniform(0, 900)
        y1 = rng.uniform(0, 900)
        t1 = 20.0 + rng.uniform(0, 40)
        queries.append(
            MORQuery2D(
                x1, x1 + rng.uniform(0, 150),
                y1, y1 + rng.uniform(0, 150),
                t1, t1 + rng.uniform(0, 30),
            )
        )
    return queries


class TestAxisWedge:
    def test_wedge_equals_axis_predicate(self):
        rng = random.Random(77)
        query = MORQuery1D(100, 300, 30, 60)
        for _ in range(300):
            v = rng.uniform(-2, 2)
            a = rng.uniform(-100, 1100)
            motion = LinearMotion1D(a, v, 0.0)
            sign = 1 if v >= 0 else -1
            wedge = axis_wedge(query, sign, v_cap=2.0)
            y_lo = min(motion.position(30), motion.position(60))
            y_hi = max(motion.position(30), motion.position(60))
            expected = y_lo <= 300 and y_hi >= 100
            assert wedge.contains(v, a) == expected

    def test_zero_velocity_in_positive_wedge(self):
        query = MORQuery1D(0, 10, 0, 1)
        wedge = axis_wedge(query, +1, v_cap=2.0)
        assert wedge.contains(0.0, 5.0)
        assert not wedge.contains(0.0, 20.0)


@pytest.mark.parametrize(
    "factory",
    [
        lambda: PlanarKDTreeIndex(PLANAR_MODEL, leaf_capacity=16),
        lambda: PlanarDecompositionIndex(PLANAR_MODEL, leaf_capacity=16),
        lambda: PlanarTPRTreeIndex(PLANAR_MODEL, page_capacity=8),
    ],
    ids=["kdtree-4d", "decomposition", "tpr-2d"],
)
class TestPlanarIndexes:
    def test_queries_match_brute_force(self, factory):
        index = factory()
        rng = random.Random(88)
        objects = random_planar_objects(rng, 250)
        for obj in objects:
            index.insert(obj)
        assert len(index) == 250
        for query in random_planar_queries(rng, 25):
            assert index.query(query) == brute_force_2d(objects, query)

    def test_updates_and_deletes(self, factory):
        index = factory()
        rng = random.Random(89)
        objects = {o.oid: o for o in random_planar_objects(rng, 120)}
        for obj in objects.values():
            index.insert(obj)
        for oid in list(objects)[::2]:
            new = MobileObject2D(
                oid,
                LinearMotion2D(
                    rng.uniform(0, 1000), rng.uniform(0, 1000),
                    rng.uniform(-2, 2), rng.uniform(-2, 2), t0=25.0,
                ),
            )
            index.update(new)
            objects[oid] = new
        for oid in list(objects)[::3]:
            index.delete(oid)
            del objects[oid]
        for query in random_planar_queries(rng, 15):
            assert index.query(query) == brute_force_2d(
                objects.values(), query
            )

    def test_error_paths(self, factory):
        index = factory()
        obj = MobileObject2D(1, LinearMotion2D(10, 10, 1.0, -1.0))
        index.insert(obj)
        with pytest.raises(DuplicateObjectError):
            index.insert(obj)
        with pytest.raises(ObjectNotFoundError):
            index.delete(99)
        with pytest.raises(InvalidMotionError):
            index.insert(MobileObject2D(2, LinearMotion2D(10, 10, 5.0, 0.0)))
        with pytest.raises(InvalidMotionError):
            index.insert(MobileObject2D(3, LinearMotion2D(-5, 10, 1.0, 0.0)))
        assert index.pages_in_use > 0
        index.clear_buffers()


class TestPlanarModel:
    def test_validation(self):
        with pytest.raises(InvalidMotionError):
            PlanarModel(Terrain2D(10, 10), v_max=0.0)

    def test_per_axis_time_overlap_matters(self):
        """An object matching each axis at different times must not match."""
        # Moves through x-range [0,10] during t in [0,10] and y-range
        # [0,10] during t in [20,30]: never inside the box at one instant.
        motion = LinearMotion2D(x0=0.0, y0=-20.0, vx=1.0, vy=1.0, t0=0.0)
        query = MORQuery2D(0, 10, 0, 10, 0, 10)
        assert not matches_2d(motion, query)
        # A slower x-component keeps the axis windows overlapping.
        slow_x = LinearMotion2D(x0=0.0, y0=-20.0, vx=0.2, vy=1.0, t0=0.0)
        assert matches_2d(slow_x, MORQuery2D(0, 10, 0, 10, 0, 30))
