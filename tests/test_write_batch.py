"""The batched write path: differential wall + crash chaos.

Contract under test at every layer: ``apply_batch`` changes the
*transport* of writes (one lock round, one grouped WAL append + fsync
per shard, one listener fire), never their semantics.  Batched
outcomes, catalogs, WAL streams, subscription delta streams and query
answers must be byte-identical to the scalar calls applied in the same
order — including rejected operations, duplicate oids inside one
batch, and recovery after a crash at either write-batch boundary
(:data:`WRITE_BATCH_CRASH_POINTS`).
"""

import random

import pytest

from repro.core import LinearMotion1D, MobileObject1D, MORQuery1D
from repro.engine import MotionDatabase
from repro.errors import (
    InvalidMotionError,
    ObjectNotFoundError,
    SimulatedCrashError,
)
from repro.indexes.hough_y_forest import HoughYForestIndex
from repro.service import (
    BatchExecutor,
    CrashPointInjector,
    Deregister,
    FaultTolerantMotionService,
    Register,
    Report,
    RetryPolicy,
    ShardedMotionService,
    SubscriptionManager,
    WRITE_BATCH_CRASH_POINTS,
)
from repro.vector.ops import DeregisterOp, RegisterOp, ReportOp

from .helpers import PAPER_MODEL

pytestmark = pytest.mark.writebatch

Y_MAX, V_MIN, V_MAX = 1000.0, 0.16, 1.66


# -- workload ------------------------------------------------------------------


def build_stream(rng, n, rounds=2, churn=0.1, errors=0.05):
    """Mixed write stream: initial registers, then report rounds with
    deregister/re-register churn and contained-error probes sprinkled
    in.  Invalid-speed reports are deliberately absent: the scalar
    path's partial-application quirk for them is documented, not a
    batch regression."""
    stream = [
        RegisterOp(
            oid,
            rng.uniform(0, Y_MAX),
            rng.choice([1.0, -1.0]) * rng.uniform(V_MIN, V_MAX),
            0.0,
        )
        for oid in range(n)
    ]
    population = list(range(n))
    fresh = n
    for round_index in range(1, rounds + 1):
        now = float(round_index)
        order = list(population)
        rng.shuffle(order)
        for oid in order:
            draw = rng.random()
            if draw < errors:
                probe = rng.randrange(3)
                unknown = 10_000_000 + len(stream)
                if probe == 0:
                    stream.append(ReportOp(unknown, 1.0, 1.0, now))
                elif probe == 1:
                    stream.append(DeregisterOp(unknown))
                else:
                    stream.append(RegisterOp(oid, 1.0, 1.0, now))
            elif draw < errors + churn:
                stream.append(DeregisterOp(oid))
                stream.append(
                    RegisterOp(
                        fresh,
                        rng.uniform(0, Y_MAX),
                        rng.choice([1.0, -1.0]) * rng.uniform(V_MIN, V_MAX),
                        now,
                    )
                )
                population[population.index(oid)] = fresh
                fresh += 1
            else:
                stream.append(
                    ReportOp(
                        oid,
                        rng.uniform(0, Y_MAX),
                        rng.choice([1.0, -1.0]) * rng.uniform(V_MIN, V_MAX),
                        now,
                    )
                )
    return stream


def apply_scalar(service, stream):
    outcomes = []
    for op in stream:
        try:
            if isinstance(op, RegisterOp):
                service.register(op.oid, op.y0, op.v, op.t0)
            elif isinstance(op, ReportOp):
                service.report(op.oid, op.y0, op.v, op.t0)
            else:
                service.deregister(op.oid)
            outcomes.append(None)
        except (InvalidMotionError, ObjectNotFoundError) as exc:
            outcomes.append(exc)
    return outcomes


def apply_batched(service, stream, batch_size):
    outcomes = []
    for begin in range(0, len(stream), batch_size):
        outcomes.extend(service.apply_batch(stream[begin:begin + batch_size]))
    return outcomes


def probe_queries():
    queries = []
    for y1 in (0.0, 200.0, 450.0, 700.0):
        for t1, t2 in ((2.0, 2.0), (2.5, 4.0), (3.0, 20.0)):
            queries.append(MORQuery1D(y1, min(y1 + 260.0, Y_MAX), t1, t2))
    return queries


def assert_twins_agree(scalar, batched, want, got):
    assert len(want) == len(got)
    for i, (a, b) in enumerate(zip(want, got)):
        assert type(a) is type(b), f"outcome {i}: {a!r} vs {b!r}"
        if a is not None:
            assert str(a) == str(b), f"outcome {i}: {a!r} vs {b!r}"
    assert batched.motion_snapshot() == scalar.motion_snapshot()
    for query in probe_queries():
        assert batched.within(
            query.y1, query.y2, query.t1, query.t2
        ) == scalar.within(query.y1, query.y2, query.t1, query.t2)
        assert batched.snapshot_at(
            query.y1, query.y2, query.t1
        ) == scalar.snapshot_at(query.y1, query.y2, query.t1)


# -- the differential wall -----------------------------------------------------


class TestBatchedEqualsScalar:
    @pytest.mark.parametrize("seed", [3, 17, 91])
    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_sharded_service_across_seeds_and_shards(self, seed, shards):
        stream = build_stream(random.Random(seed), n=80)
        scalar = ShardedMotionService(Y_MAX, V_MIN, V_MAX, shards=shards)
        batched = ShardedMotionService(Y_MAX, V_MIN, V_MAX, shards=shards)
        want = apply_scalar(scalar, stream)
        got = apply_batched(batched, stream, batch_size=37)
        assert_twins_agree(scalar, batched, want, got)

    def test_motion_database_rebuild_threshold_crossing(self):
        """Engine-level: a storm big enough to trigger the forest's
        STR rebuild answers exactly like scalar reports."""
        rng = random.Random(5)
        scalar = MotionDatabase(Y_MAX, V_MIN, V_MAX, method="forest")
        batched = MotionDatabase(Y_MAX, V_MIN, V_MAX, method="forest")
        n = HoughYForestIndex.REBUILD_MIN_BATCH + 100
        stream = build_stream(rng, n=n, rounds=1, churn=0.05)
        want = apply_scalar(scalar, stream)
        # One batch spanning every report: the rebuild must fire.
        got = batched.apply_batch(stream)
        assert want == [None] * len(want) or True  # errors allowed
        assert_twins_agree(scalar, batched, want, got)

    def test_duplicate_oid_in_one_batch_applies_in_order(self):
        """Same-oid operations inside one batch land in submission
        order: last writer wins, and errors surface exactly where the
        scalar sequence would raise them."""
        stream = [
            RegisterOp(1, 100.0, 1.0, 0.0),
            ReportOp(1, 200.0, -1.0, 1.0),
            ReportOp(1, 300.0, 1.0, 2.0),
            DeregisterOp(1),
            ReportOp(1, 400.0, 1.0, 3.0),   # -> ObjectNotFoundError
            RegisterOp(1, 500.0, 1.0, 4.0),  # re-register after delete
            RegisterOp(1, 600.0, 1.0, 5.0),  # -> duplicate
            ReportOp(1, 700.0, -1.0, 6.0),
        ]
        scalar = ShardedMotionService(Y_MAX, V_MIN, V_MAX, shards=2)
        batched = ShardedMotionService(Y_MAX, V_MIN, V_MAX, shards=2)
        want = apply_scalar(scalar, stream)
        got = batched.apply_batch(stream)
        assert isinstance(got[4], ObjectNotFoundError)
        assert isinstance(got[6], InvalidMotionError)
        assert_twins_agree(scalar, batched, want, got)
        assert batched.motion_snapshot()[1] == LinearMotion1D(
            700.0, -1.0, 6.0
        )

    def test_rejections_never_disturb_neighbours(self):
        stream = [
            RegisterOp(1, 10.0, 1.0, 0.0),
            RegisterOp(1, 20.0, 1.0, 0.0),      # duplicate
            ReportOp(99, 30.0, 1.0, 0.5),        # unknown
            RegisterOp(2, 40.0, -1.0, 0.0),
            DeregisterOp(98),                    # unknown
            ReportOp(2, 50.0, 1.0, 1.0),
            RegisterOp(3, 60.0, 5.0, 0.0),       # invalid speed
        ]
        service = ShardedMotionService(Y_MAX, V_MIN, V_MAX, shards=3)
        outcomes = service.apply_batch(stream)
        assert [type(o) for o in outcomes] == [
            type(None), InvalidMotionError, ObjectNotFoundError,
            type(None), ObjectNotFoundError, type(None),
            InvalidMotionError,
        ]
        assert service.motion_snapshot() == {
            1: LinearMotion1D(10.0, 1.0, 0.0),
            2: LinearMotion1D(50.0, 1.0, 1.0),
        }

    def test_report_batch_alias(self):
        service = ShardedMotionService(Y_MAX, V_MIN, V_MAX, shards=2)
        service.register(1, 10.0, 1.0, 0.0)
        outcomes = service.report_batch([ReportOp(1, 20.0, -1.0, 1.0)])
        assert outcomes == [None]
        assert service.motion_snapshot()[1] == LinearMotion1D(20.0, -1.0, 1.0)

    def test_executor_batch_updates_mode(self):
        """The executor's pushed-down update phase produces the same
        per-op results and final state as its pool path."""
        rng = random.Random(23)
        ops = [Register(oid, rng.uniform(0, Y_MAX), 1.0, 0.0)
               for oid in range(40)]
        ops += [Report(oid, rng.uniform(0, Y_MAX), -1.0, 1.0)
                for oid in range(0, 40, 2)]
        ops += [Deregister(39), Deregister(39), Report(999, 1.0, 1.0, 2.0)]
        pool_service = ShardedMotionService(Y_MAX, V_MIN, V_MAX, shards=3)
        push_service = ShardedMotionService(Y_MAX, V_MIN, V_MAX, shards=3)
        with BatchExecutor(pool_service) as pool_side:
            pool_results = pool_side.run(list(ops))
        with BatchExecutor(push_service, batch_updates=True) as push_side:
            push_results = push_side.run(list(ops))
        assert len(pool_results) == len(push_results)
        for a, b in zip(pool_results, push_results):
            assert a.op == b.op
            assert (a.error is None) == (b.error is None)
            if a.error is not None:
                assert type(a.error) is type(b.error)
        assert (push_service.motion_snapshot()
                == pool_service.motion_snapshot())


# -- WAL streams and fsync grouping --------------------------------------------


def make_ft(directory, shards=3, replication=1, fsync="always",
            checkpoint_every=10_000, **kwargs):
    return FaultTolerantMotionService(
        Y_MAX, V_MIN, V_MAX,
        shards=shards,
        replication_factor=replication,
        retry=RetryPolicy(attempts=3, backoff_s=0.001, sleep=lambda s: None),
        wal_dir=str(directory),
        wal_fsync=fsync,
        checkpoint_every=checkpoint_every,
        **kwargs,
    )


def wal_tails(service):
    return [node.wal.tail() for node in service._nodes]


class TestWALStreams:
    @pytest.mark.parametrize("replication", [1, 2])
    def test_batched_wal_stream_equals_scalar(self, tmp_path, replication):
        """Grouping is invisible in the log: the per-shard record
        streams (kinds, fields, seqs) match the scalar run record for
        record, and both directories recover to the same population."""
        stream = build_stream(random.Random(8), n=50)
        scalar = make_ft(tmp_path / "scalar", replication=replication)
        batched = make_ft(tmp_path / "batched", replication=replication)
        want = apply_scalar(scalar, stream)
        got = apply_batched(batched, stream, batch_size=23)
        assert_twins_agree(scalar, batched, want, got)
        assert wal_tails(batched) == wal_tails(scalar)
        scalar.close()
        batched.close()
        scalar_restored = make_ft(tmp_path / "scalar",
                                  replication=replication)
        batched_restored = make_ft(tmp_path / "batched",
                                   replication=replication)
        scalar_restored.restore_from_disk()
        batched_restored.restore_from_disk()
        assert (batched_restored.motion_snapshot()
                == scalar_restored.motion_snapshot())
        scalar_restored.close()
        batched_restored.close()

    def test_one_fsync_per_shard_per_batch(self, tmp_path):
        """Under a deferred policy the batch path buys durability with
        exactly one fsync per touched shard — the scalar path would
        need one per record to make the same guarantee."""
        service = make_ft(tmp_path, shards=3, fsync="never")
        stream = [
            RegisterOp(oid, 10.0 * oid + 5.0, 1.0, 0.0)
            for oid in range(30)
        ]

        def fsyncs():
            return [
                node.wal.backend.stats()["log"]["fsyncs"]
                for node in service._nodes
            ]

        before = fsyncs()
        outcomes = service.apply_batch(stream)
        after = fsyncs()
        assert outcomes == [None] * len(stream)
        deltas = [b - a for a, b in zip(before, after)]
        assert all(delta == 1 for delta in deltas), deltas
        # And the records really are durable, not just page-cached.
        for node in service._nodes:
            log = node.wal.backend.stats()["log"]
            assert log["synced_bytes"] == log["size_bytes"]
        service.close()


# -- subscriptions -------------------------------------------------------------


class TestSubscriptionDeltas:
    def test_delta_streams_match_scalar(self):
        """Listeners fire once per batch, but each subscription's
        delta stream is indistinguishable from the scalar run's."""
        stream = build_stream(random.Random(12), n=60, rounds=2)
        scalar = ShardedMotionService(Y_MAX, V_MIN, V_MAX, shards=3)
        batched = ShardedMotionService(Y_MAX, V_MIN, V_MAX, shards=3)
        legs = {}
        for name, service in (("scalar", scalar), ("batched", batched)):
            manager = SubscriptionManager(service)
            sids = [
                manager.subscribe_snapshot(100.0, 400.0),
                manager.subscribe_within(500.0, 900.0, horizon=10.0),
            ]
            legs[name] = (manager, sids)
        want = apply_scalar(scalar, stream)
        got = apply_batched(batched, stream, batch_size=41)
        assert_twins_agree(scalar, batched, want, got)
        scalar_manager, scalar_sids = legs["scalar"]
        batched_manager, batched_sids = legs["batched"]
        for sid_a, sid_b in zip(scalar_sids, batched_sids):
            assert (batched_manager.drain_deltas(sid_b)
                    == scalar_manager.drain_deltas(sid_a))
        scalar_manager.close()
        batched_manager.close()


def version_chains(pre, batch):
    """Every motion an object legitimately held at some point of the
    batch: its pre-batch value plus each in-batch write, in order.  A
    recovered value outside its object's chain is torn state."""
    chains = {oid: [motion] for oid, motion in pre.items()}
    live = dict(pre)
    for op in batch:
        if isinstance(op, DeregisterOp):
            live.pop(op.oid, None)
            continue
        if isinstance(op, RegisterOp) and op.oid in live:
            continue  # duplicate: rejected, no new version
        if isinstance(op, ReportOp) and op.oid not in live:
            continue  # unknown: rejected
        if abs(op.v) > V_MAX:
            continue  # invalid speed: rejected
        motion = LinearMotion1D(op.y0, op.v, op.t0)
        live[op.oid] = motion
        chains.setdefault(op.oid, []).append(motion)
    return chains


# -- crash chaos ---------------------------------------------------------------


class TestWriteBatchChaos:
    def test_crash_point_registry(self):
        assert WRITE_BATCH_CRASH_POINTS == (
            "write_batch.pre_fsync", "bulk.mid_pack",
        )

    @pytest.mark.chaos
    @pytest.mark.parametrize("fsync", ["always", "never"])
    def test_crash_between_append_and_sync(self, tmp_path, fsync):
        """Process death after a shard's grouped append but before its
        sync: recovery lands an all-or-prefix cut — every recovered
        motion is a pre-batch or post-batch value, never an invention,
        and each shard's log is a prefix of the crash-free twin's."""
        stream = build_stream(random.Random(31), n=40)
        prologue, batch = stream[:40], stream[40:]
        service = make_ft(tmp_path / "crash", fsync=fsync)
        apply_scalar(service, prologue)
        pre = service.motion_snapshot()
        twin = make_ft(tmp_path / "twin", fsync=fsync)
        apply_scalar(twin, prologue)
        twin.apply_batch(batch)
        post = twin.motion_snapshot()
        twin_tails = wal_tails(twin)
        twin.close()

        injector = CrashPointInjector().arm("write_batch.pre_fsync")
        with pytest.raises(SimulatedCrashError):
            service.apply_batch(batch, crash_hook=injector)
        assert injector.fired == [("write_batch.pre_fsync", 1)]
        service.close()

        restored = make_ft(tmp_path / "crash", fsync=fsync)
        restored.restore_from_disk()
        recovered = restored.motion_snapshot()
        for oid, motion in recovered.items():
            assert motion in (pre.get(oid), post.get(oid)), (
                f"object {oid} recovered torn motion {motion}"
            )
        for shard, tail in enumerate(wal_tails(restored)):
            assert tail == twin_tails[shard][:len(tail)], (
                f"shard {shard} log is not a prefix of the twin's"
            )
        restored.close()

    @pytest.mark.chaos
    @pytest.mark.parametrize(
        "point,spec",
        [
            ("log.mid_record", {"write_prefix": 7}),
            ("log.pre_fsync", {"drop_unsynced": True}),
        ],
    )
    def test_crash_mid_grouped_append(self, tmp_path, point, spec):
        """Dying *inside* the grouped append — a torn frame, or losing
        the page cache — still recovers a clean per-shard prefix."""
        stream = build_stream(random.Random(47), n=40)
        prologue, batch = stream[:40], stream[40:]
        injector = CrashPointInjector().arm(point, at=60, **spec)
        service = make_ft(tmp_path / "crash", wal_crash_hook=injector)
        apply_scalar(service, prologue)
        pre = service.motion_snapshot()
        twin = make_ft(tmp_path / "twin")
        apply_scalar(twin, prologue)
        twin.apply_batch(batch)
        post = twin.motion_snapshot()
        twin_tails = wal_tails(twin)
        twin.close()

        with pytest.raises(SimulatedCrashError):
            service.apply_batch(batch)
        service.close()

        restored = make_ft(tmp_path / "crash")
        summary = restored.restore_from_disk()
        recovered = restored.motion_snapshot()
        assert summary["objects"] == len(recovered)
        chains = version_chains(pre, batch)
        for oid, motion in recovered.items():
            assert motion in chains.get(oid, []), (
                f"object {oid} recovered torn motion {motion}"
            )
        for shard, tail in enumerate(wal_tails(restored)):
            assert tail == twin_tails[shard][:len(tail)], (
                f"shard {shard} log is not a prefix of the twin's"
            )
        restored.close()

    @pytest.mark.chaos
    def test_crash_mid_bulk_rebuild_never_adopts_half_generation(self):
        """A bulk rebuild that dies between tree packs must leave the
        forest exactly as it was — the half-built generation is
        discarded, and a retry completes cleanly."""
        rng = random.Random(9)
        model = PAPER_MODEL
        population = [
            MobileObject1D(
                oid,
                LinearMotion1D(
                    rng.uniform(0, model.terrain.y_max),
                    rng.choice([1.0, -1.0])
                    * rng.uniform(model.v_min, model.v_max),
                    0.0,
                ),
            )
            for oid in range(HoughYForestIndex.REBUILD_MIN_BATCH + 40)
        ]
        forest = HoughYForestIndex(model, c=2)
        twin = HoughYForestIndex(model, c=2)
        for obj in population:
            forest.insert(obj)
            twin.insert(obj)
        storm = [
            MobileObject1D(
                obj.oid,
                LinearMotion1D(
                    rng.uniform(0, model.terrain.y_max),
                    obj.motion.v,
                    1.0,
                ),
            )
            for obj in population
        ]
        injector = CrashPointInjector().arm("bulk.mid_pack", at=2)
        forest.crash_hook = injector
        with pytest.raises(SimulatedCrashError):
            forest.update_batch(storm)
        assert injector.fired == [("bulk.mid_pack", 2)]
        # Pre-storm state intact, byte for byte.
        probe = MORQuery1D(0.0, model.terrain.y_max, 0.0, 50.0)
        assert len(forest) == len(twin)
        assert forest.query(probe) == twin.query(probe)
        # The retry (hook disarmed) completes and matches a clean run.
        forest.crash_hook = None
        forest.update_batch(storm)
        twin.update_batch(storm)
        assert forest.query(probe) == twin.query(probe)
        for y1 in (0.0, 300.0, 600.0):
            window = MORQuery1D(y1, y1 + 350.0, 5.0, 40.0)
            assert forest.query(window) == twin.query(window)
