"""Cross-module property-based tests (hypothesis).

Each property pins an invariant the library's correctness rests on,
over randomly generated motions, queries and workloads.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LinearMotion1D,
    MORQuery1D,
    MobileObject1D,
    brute_force_1d,
    hough_x,
    hough_y,
    matches_1d,
)
from repro.extensions import brute_force_knn, knn_at, min_gap
from repro.extensions.neighbors import KNNEngine
from repro.indexes import DualKDTreeIndex, HoughYForestIndex
from repro.io_sim import DiskSimulator, external_sort
from repro.kinetic import count_crossings, find_crossings
from repro.partition import simplicial_partition

from .helpers import PAPER_MODEL

# -- strategies ---------------------------------------------------------------

motions = st.builds(
    LinearMotion1D,
    y0=st.floats(min_value=0, max_value=1000),
    v=st.one_of(
        st.floats(min_value=0.16, max_value=1.66),
        st.floats(min_value=-1.66, max_value=-0.16),
    ),
    t0=st.floats(min_value=0, max_value=100),
)

windows = st.builds(
    lambda t1, dt: (t1, t1 + dt),
    t1=st.floats(min_value=0, max_value=200),
    dt=st.floats(min_value=0, max_value=100),
)


def population(seed, n):
    rng = random.Random(seed)
    objects = []
    for oid in range(n):
        speed = rng.uniform(0.16, 1.66)
        direction = 1 if rng.random() < 0.5 else -1
        objects.append(
            MobileObject1D(
                oid,
                LinearMotion1D(
                    rng.uniform(0, 1000), direction * speed,
                    rng.uniform(0, 50),
                ),
            )
        )
    return objects


# -- duality ---------------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(motion=motions, t=st.floats(min_value=0, max_value=500))
def test_property_hough_x_reconstructs_position(motion, t):
    v, a = hough_x(motion, t_ref=0.0)
    expected = motion.position(t)
    assert abs(a + v * t - expected) <= 1e-9 * (1 + abs(expected) + abs(v * t))


@settings(max_examples=200, deadline=None)
@given(motion=motions, y_r=st.floats(min_value=0, max_value=1000))
def test_property_hough_y_crossing_time(motion, y_r):
    n, b = hough_y(motion, y_r)
    # At the crossing time the object is at the horizon (up to fp noise).
    assert abs(motion.position(b) - y_r) < 1e-6 * (1 + abs(y_r) + abs(b))


@settings(max_examples=200, deadline=None)
@given(motion=motions, window=windows)
def test_property_matches_monotone_in_window(motion, window):
    """Growing the window can only add matches, never remove them."""
    t1, t2 = window
    small = MORQuery1D(400.0, 600.0, t1, t2)
    large = MORQuery1D(400.0, 600.0, max(0.0, t1 - 10), t2 + 10)
    if matches_1d(motion, small):
        assert matches_1d(motion, large)


@settings(max_examples=200, deadline=None)
@given(motion=motions, dy=st.floats(min_value=0, max_value=100))
def test_property_matches_monotone_in_range(motion, dy):
    small = MORQuery1D(450.0, 550.0, 10.0, 30.0)
    large = MORQuery1D(450.0 - dy, 550.0 + dy, 10.0, 30.0)
    if matches_1d(motion, small):
        assert matches_1d(motion, large)


# -- index equivalence ------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n=st.integers(min_value=0, max_value=120),
    qseed=st.integers(min_value=0, max_value=10**6),
)
def test_property_forest_equals_kdtree_equals_oracle(seed, n, qseed):
    objects = population(seed, n)
    forest = HoughYForestIndex(PAPER_MODEL, c=3, leaf_capacity=8)
    kdtree = DualKDTreeIndex(PAPER_MODEL, leaf_capacity=8)
    for obj in objects:
        forest.insert(obj)
        kdtree.insert(obj)
    rng = random.Random(qseed)
    for _ in range(5):
        y1 = rng.uniform(0, 950)
        t1 = rng.uniform(50, 150)
        query = MORQuery1D(
            y1, min(1000.0, y1 + rng.uniform(0, 400)),
            t1, t1 + rng.uniform(0, 50),
        )
        expected = brute_force_1d(objects, query)
        assert forest.query(query) == expected
        assert kdtree.query(query) == expected


# -- kinetic ------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_property_crossings_additive_over_subwindows(seed):
    """Crossings in (0, T] = crossings in (0, T/2] + (T/2, T]."""
    objects = population(seed, 40)
    whole = count_crossings(objects, 0.0, 100.0)
    first = count_crossings(objects, 0.0, 50.0)
    second = count_crossings(objects, 50.0, 100.0)
    assert whole == first + second


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_property_crossing_times_within_window(seed):
    objects = population(seed, 30)
    for event in find_crossings(objects, 10.0, 60.0):
        assert 10.0 < event.time <= 60.0
        assert event.a != event.b


# -- partitioning ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n=st.integers(min_value=1, max_value=300),
    r=st.integers(min_value=1, max_value=32),
)
def test_property_partition_covers_and_bounds(seed, n, r):
    rng = random.Random(seed)
    entries = [
        ((rng.uniform(0, 100), rng.uniform(0, 100)), i) for i in range(n)
    ]
    cells = simplicial_partition(entries, r)
    covered = sorted(oid for cell, _ in cells for _, oid in cell)
    assert covered == list(range(n))
    assert len(cells) <= max(r, 1)
    for cell, shape in cells:
        assert cell, "empty cell emitted"
        for point, _ in cell:
            assert shape.contains(point)


# -- external sort -----------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    data=st.lists(st.integers(min_value=-10**6, max_value=10**6), max_size=500),
    capacity=st.integers(min_value=2, max_value=16),
    memory=st.integers(min_value=2, max_value=6),
)
def test_property_external_sort_is_a_sort(data, capacity, memory):
    disk = DiskSimulator()
    run = external_sort(disk, data, page_capacity=capacity, memory_pages=memory)
    assert list(run.scan()) == sorted(data)


# -- neighbors -------------------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n=st.integers(min_value=1, max_value=80),
    k=st.integers(min_value=1, max_value=10),
)
def test_property_knn_sorted_and_exact(seed, n, k):
    objects = population(seed, n)
    engine = KNNEngine(DualKDTreeIndex(PAPER_MODEL, leaf_capacity=8))
    for obj in objects:
        engine.insert(obj)
    rng = random.Random(seed + 1)
    y, t = rng.uniform(0, 1000), rng.uniform(50, 150)
    got = engine.knn(y, t, k)
    distances = [d for _, d in got]
    assert distances == sorted(distances)
    assert got == brute_force_knn(objects, y, t, min(k, n))


@settings(max_examples=100, deadline=None)
@given(a=motions, b=motions, window=windows)
def test_property_min_gap_symmetric_and_monotone(a, b, window):
    t1, t2 = window
    gap = min_gap(a, b, t1, t2)
    assert gap >= 0
    assert gap == min_gap(b, a, t1, t2)
    # A wider window can only find a smaller (or equal) gap.
    assert min_gap(a, b, max(0.0, t1 - 5), t2 + 5) <= gap + 1e-9
