"""The soak harness: determinism, concurrency, chaos, durability.

The acceptance-scale runs live in ``make soak-baseline`` /
``serve-bench --soak``; these tests keep the harness honest at a size
that runs in seconds:

* determinism — two single-threaded runs from one seed produce
  byte-identical schedule *and* trace digests, with zero divergences
  (the ``soak-smoke`` gate in ``make check``);
* the multi-threaded mode survives a mid-storm shard kill with zero
  divergences at the quiescent check rounds;
* the durable restart cycle (graceful close + ``restore_from_disk``)
  converges back to the acknowledged catalog;
* the grid scenario is additionally cross-checked by the
  velocity-bucket oracle inside the harness.
"""

import pytest

from repro.soak import SoakConfig, run_soak

pytestmark = pytest.mark.soak


def small_config(**overrides) -> SoakConfig:
    base = dict(
        scenario="uniform", n=180, ticks=6, shards=3, replication=2,
        threads=1, subscriptions=6, batch_queries_per_tick=12,
        batch_size=6, check_every=2, queries_per_check=4, seed=77,
    )
    base.update(overrides)
    return SoakConfig(**base)


class TestDeterminism:
    def test_single_threaded_runs_are_byte_identical(self):
        reports = [
            run_soak(small_config(crashes=1, arrivals_per_tick=2,
                                  departures_per_tick=1))
            for _ in range(2)
        ]
        first, second = reports
        assert first.divergences == 0, first.divergence_labels
        assert second.divergences == 0
        assert first.schedule_sha256 == second.schedule_sha256
        assert first.trace_sha256 == second.trace_sha256
        assert first.trace_sha256 is not None
        assert first.ops == second.ops

    def test_write_batch_size_one_is_the_scalar_path(self):
        """``write_batch_size=1`` must be a no-op: the scalar write
        path runs verbatim, so digests match a config that never
        mentions the knob — a regression wall for the batch plumbing."""
        scalar = run_soak(small_config())
        batched_off = run_soak(small_config(write_batch_size=1))
        assert scalar.divergences == batched_off.divergences == 0
        assert scalar.schedule_sha256 == batched_off.schedule_sha256
        assert scalar.trace_sha256 == batched_off.trace_sha256

    def test_write_batch_storms_stay_deterministic(self):
        """Routing write storms through ``apply_batch`` keeps the soak
        deterministic (byte-identical digests across runs) and clean
        under the differential oracles."""
        reports = [
            run_soak(small_config(write_batch_size=8)) for _ in range(2)
        ]
        first, second = reports
        assert first.divergences == 0, first.divergence_labels
        assert second.divergences == 0
        assert first.schedule_sha256 == second.schedule_sha256
        assert first.trace_sha256 == second.trace_sha256
        # Same seed, same schedule as the scalar path: batching is a
        # transport choice, never a workload change.
        scalar = run_soak(small_config())
        assert first.schedule_sha256 == scalar.schedule_sha256

    def test_different_seed_different_schedule(self):
        a = run_soak(small_config(ticks=3))
        b = run_soak(small_config(ticks=3, seed=78))
        assert a.schedule_sha256 != b.schedule_sha256

    def test_multithreaded_schedule_matches_single_threaded(self):
        single = run_soak(small_config(ticks=4))
        multi = run_soak(small_config(ticks=4, threads=3))
        # The generated schedule is seed-pure regardless of thread
        # count; only the trace digest is a single-thread concept.
        assert single.schedule_sha256 == multi.schedule_sha256
        assert multi.trace_sha256 is None


class TestScenarios:
    @pytest.mark.parametrize(
        "scenario", ["city", "grid", "convoy", "adversarial"]
    )
    def test_every_scenario_soaks_clean(self, scenario):
        report = run_soak(small_config(
            scenario=scenario, n=150, arrivals_per_tick=2,
            departures_per_tick=1, crashes=1,
        ))
        assert report.divergences == 0, report.divergence_labels
        assert report.checks["query_checks"] > 0
        assert report.checks["batch_checks"] > 0
        assert report.recovery["crashes"] == 1
        assert report.recovery["recoveries"] == 1

    def test_grid_scenario_exercises_bucket_oracle(self):
        report = run_soak(small_config(scenario="grid", n=120))
        assert report.checks["grid_checks"] > 0
        assert report.divergences == 0, report.divergence_labels

    def test_velocity_router_under_adversarial_skew(self):
        report = run_soak(small_config(
            scenario="adversarial", n=120, router="velocity", crashes=0,
        ))
        assert report.divergences == 0, report.divergence_labels


class TestConcurrency:
    def test_multithreaded_crash_storm_stays_consistent(self):
        report = run_soak(small_config(
            n=300, ticks=6, threads=4, crashes=2, shards=4,
            arrivals_per_tick=3, departures_per_tick=2,
            batch_queries_per_tick=24,
        ))
        assert report.divergences == 0, report.divergence_labels
        assert report.recovery["crashes"] == 2
        assert report.recovery["recoveries"] == 2
        assert report.ops["batch_queries"] > 0

    def test_replication_one_degrades_without_diverging(self):
        # r=1 + a crash: writes to the dead shard bounce, reads come
        # back partial — every such check must be skipped, not failed.
        report = run_soak(small_config(replication=1, crashes=1))
        assert report.divergences == 0, report.divergence_labels
        assert report.checks["skipped_degraded"] > 0


@pytest.mark.durability
class TestDurableRestart:
    def test_restart_cycle_converges(self, tmp_path):
        report = run_soak(small_config(
            crashes=1, restarts=1, wal_dir=str(tmp_path), fsync="batch:4",
        ))
        assert report.divergences == 0, report.divergence_labels
        assert report.recovery["restarts"] == 1
        assert report.recovery["restored_objects"] > 0
        assert report.checks["restart_checks"] == 1

    def test_restart_requires_wal_dir(self):
        with pytest.raises(ValueError):
            SoakConfig(restarts=1, wal_dir=None)


class TestReport:
    def test_report_roundtrips_to_json(self, tmp_path):
        report = run_soak(small_config(ticks=3))
        path = tmp_path / "BENCH_soak.json"
        report.write_json(str(path))
        import json

        data = json.loads(path.read_text())
        assert data["name"] == "soak"
        assert data["divergences"] == 0
        assert data["determinism"]["schedule_sha256"]
        assert data["throughput"]["write_ops_per_s"] > 0
        assert "report" in data["latency_ms"]
        rendered = report.render()
        assert "divergences: 0" in rendered

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SoakConfig(threads=0)
        with pytest.raises(ValueError):
            SoakConfig(replication=5, shards=4)
        with pytest.raises(ValueError):
            SoakConfig(crashes=1, shards=1)
