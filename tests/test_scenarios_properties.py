"""Property-based guarantees for the convoy and grid generators.

Hypothesis drives the scenario parameters; the invariants under test
are the ones the soak harness's oracles and the MOIST/grid papers'
premises rest on:

* convoy members never leave their convoy's declared velocity band,
  and the band itself (jitter around the drifting base) never leaves
  the model's ``[v_min, v_max]``;
* grid positions and velocities are integral at every event, forever;
* the grid-bucketed oracle agrees with brute force on arbitrary
  integer workloads.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import LinearMotion1D, MobileObject1D
from repro.core.predicates import brute_force_1d
from repro.core.queries import MORQuery1D
from repro.workloads import ConvoyScenario, GridScenario

SCENARIO_SETTINGS = settings(max_examples=25, deadline=None)


@SCENARIO_SETTINGS
@given(
    seed=st.integers(0, 2**32 - 1),
    convoys=st.integers(1, 10),
    jitter=st.floats(0.01, 0.2),
    n=st.integers(5, 60),
    ticks=st.integers(1, 6),
)
def test_convoy_members_respect_declared_bands(seed, convoys, jitter, n, ticks):
    scenario = ConvoyScenario(
        n=n, seed=seed, convoys=convoys, jitter=jitter,
        updates_per_tick=max(1, n // 3),
    )
    all_events = list(scenario.initial_events())
    for tick in range(1, ticks + 1):
        tick_events = scenario.tick_events(float(tick))
        all_events.extend(tick_events)
        # Membership can change mid-tick (defections), so the sound
        # per-tick invariant is: each object's *last* event of the tick
        # was drawn from the band of its final convoy (bands only
        # drift at the next tick start).
        last = {}
        for event in tick_events:
            last[event.oid] = event
        for oid, event in last.items():
            if event.kind == "deregister":
                continue
            lo, hi = scenario.convoy_band(scenario.convoy_of(oid))
            assert lo - 1e-9 <= abs(event.v) <= hi + 1e-9
    # Globally, every emitted speed ever stays inside the model band.
    for event in all_events:
        if event.kind == "deregister":
            continue
        speed = abs(event.v)
        assert scenario.v_min - 1e-9 <= speed <= scenario.v_max + 1e-9


@SCENARIO_SETTINGS
@given(
    seed=st.integers(0, 2**32 - 1),
    convoys=st.integers(2, 8),
    jitter=st.floats(0.01, 0.15),
)
def test_convoy_band_width_is_bounded_by_jitter(seed, convoys, jitter):
    scenario = ConvoyScenario(n=10, seed=seed, convoys=convoys, jitter=jitter)
    width = 2 * jitter * (scenario.v_max - scenario.v_min)
    for cid in range(convoys):
        lo, hi = scenario.convoy_band(cid)
        assert abs((hi - lo) - width) < 1e-9
        assert scenario.v_min - 1e-9 <= lo and hi <= scenario.v_max + 1e-9


@SCENARIO_SETTINGS
@given(
    seed=st.integers(0, 2**32 - 1),
    grid=st.integers(10, 2000),
    v_grid=st.integers(1, 6),
    n=st.integers(5, 60),
    ticks=st.integers(1, 8),
    churn=st.integers(0, 3),
)
def test_grid_positions_stay_integral(seed, grid, v_grid, n, ticks, churn):
    scenario = GridScenario(
        n=n, seed=seed, grid=grid, v_grid=v_grid,
        updates_per_tick=max(1, n // 3),
        arrivals_per_tick=churn, departures_per_tick=churn,
    )
    events = list(scenario.initial_events())
    for tick in range(1, ticks + 1):
        events.extend(scenario.tick_events(float(tick)))
    for event in events:
        if event.kind == "deregister":
            continue
        assert float(event.y0).is_integer()
        assert float(event.v).is_integer()
        assert float(event.t0).is_integer()
        assert 0 <= event.y0 <= grid
        assert 1 <= abs(event.v) <= v_grid
    # Integrality is closed under extrapolation to any integer instant.
    for oid, motion in scenario.motions.items():
        at = float(ticks + 3)
        assert (motion.y0 + motion.v * (at - motion.t0)).is_integer()


@SCENARIO_SETTINGS
@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(1, 80),
    grid=st.integers(10, 500),
    v_grid=st.integers(1, 5),
    queries=st.integers(1, 20),
)
def test_grid_bucket_oracle_matches_brute_force(seed, n, grid, v_grid, queries):
    rng = random.Random(seed)
    motions = {}
    for oid in range(n):
        speed = rng.randint(1, v_grid) * rng.choice([-1, 1])
        motions[oid] = LinearMotion1D(
            float(rng.randint(0, grid)), float(speed),
            float(rng.randint(0, 10)),
        )
    oracle = GridScenario.make_oracle(motions)
    objects = [MobileObject1D(oid, m) for oid, m in motions.items()]
    for _ in range(queries):
        y1 = float(rng.randint(-grid // 4, grid))
        y2 = y1 + rng.randint(0, grid // 2)
        t1 = float(rng.randint(0, 30))
        t2 = t1 + rng.randint(0, 15)
        assert oracle.within(y1, y2, t1, t2) == brute_force_1d(
            objects, MORQuery1D(y1, y2, t1, t2)
        )
