"""Tests for the MotionDatabase facade."""

import random

import pytest

from repro.core import LinearMotion1D, MobileObject1D, brute_force_1d
from repro.engine import MotionDatabase
from repro.errors import InvalidMotionError, ObjectNotFoundError
from repro.extensions import brute_force_knn


def populate(db, rng, n=100, t0=0.0):
    objects = []
    for oid in range(n):
        y0 = rng.uniform(0, 1000)
        v = rng.choice([-1, 1]) * rng.uniform(0.16, 1.66)
        db.register(oid, y0, v, t0)
        objects.append(MobileObject1D(oid, LinearMotion1D(y0, v, t0)))
    return objects


class TestLifecycle:
    def test_register_report_deregister(self):
        db = MotionDatabase(1000.0, 0.16, 1.66)
        db.register(1, 100.0, 1.0, 0.0)
        assert 1 in db
        assert len(db) == 1
        assert db.location_of(1, 10.0) == 110.0
        db.report(1, 110.0, -1.0, 10.0)
        assert db.location_of(1, 20.0) == 100.0
        assert db.now == 10.0
        db.deregister(1)
        assert 1 not in db

    def test_unknown_object_errors(self):
        db = MotionDatabase(1000.0, 0.16, 1.66)
        with pytest.raises(ObjectNotFoundError):
            db.report(9, 0.0, 1.0, 0.0)
        with pytest.raises(ObjectNotFoundError):
            db.deregister(9)
        with pytest.raises(ObjectNotFoundError):
            db.location_of(9, 0.0)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            MotionDatabase(1000.0, 0.16, 1.66, method="btree-of-doom")

    def test_duplicate_register_rejected(self):
        """Regression: re-registering an oid must fail cleanly at the
        facade (InvalidMotionError), not leak index internals or leave
        partial state behind."""
        db = MotionDatabase(1000.0, 0.16, 1.66)
        db.register(1, 100.0, 1.0, 0.0)
        with pytest.raises(InvalidMotionError):
            db.register(1, 200.0, -1.0, 5.0)
        # Original motion untouched; exactly one copy indexed.
        assert len(db) == 1
        assert db.location_of(1, 10.0) == 110.0
        assert db.snapshot_at(0.0, 1000.0, 10.0) == {1}
        # report() is the way to supersede a motion.
        db.report(1, 200.0, -1.0, 5.0)
        assert db.location_of(1, 10.0) == 195.0

    def test_duplicate_register_with_history_keeps_clock(self):
        """With history enabled the failed register must not advance
        the archive clock (previously the duplicate reached the index
        after the clock moved)."""
        db = MotionDatabase(1000.0, 0.16, 1.66, keep_history=True)
        db.register(1, 100.0, 1.0, 0.0)
        with pytest.raises(InvalidMotionError):
            db.register(1, 300.0, 1.0, 50.0)
        # An update at an earlier time must still be accepted: the
        # rejected register left no trace in the time discipline.
        db.report(1, 120.0, 1.0, 20.0)
        assert db.query_past(100.0, 121.0, 0.0, 20.0) == {1}

    def test_slow_objects_accepted(self):
        db = MotionDatabase(1000.0, 0.16, 1.66)
        db.register(1, 500.0, 0.0, 0.0)  # parked car
        assert db.snapshot_at(499.0, 501.0, 100.0) == {1}


@pytest.mark.parametrize("method", ["forest", "kdtree"])
class TestQueries:
    def test_within_matches_brute_force(self, method):
        rng = random.Random(5)
        db = MotionDatabase(1000.0, 0.16, 1.66, method=method)
        objects = populate(db, rng)
        for _ in range(20):
            y1 = rng.uniform(0, 900)
            t1 = rng.uniform(10, 50)
            from repro.core import MORQuery1D

            query = MORQuery1D(y1, y1 + 80, t1, t1 + 30)
            assert db.within(y1, y1 + 80, t1, t1 + 30) == brute_force_1d(
                objects, query
            )

    def test_nearest(self, method):
        rng = random.Random(6)
        db = MotionDatabase(1000.0, 0.16, 1.66, method=method)
        objects = populate(db, rng)
        got = db.nearest(500.0, 30.0, k=5)
        expected = brute_force_knn(objects, 500.0, 30.0, 5)
        assert [oid for oid, _ in got] == [oid for oid, _ in expected]

    def test_proximity_pairs(self, method):
        rng = random.Random(7)
        db = MotionDatabase(1000.0, 0.16, 1.66, method=method)
        populate(db, rng, n=60)
        pairs = db.proximity_pairs(2.0, 10.0, 30.0)
        for a, b in pairs:
            assert a < b
        # Sanity: pairs actually get close.
        for a, b in list(pairs)[:5]:
            gap = min(
                abs(db.location_of(a, t) - db.location_of(b, t))
                for t in [10 + i * 0.5 for i in range(41)]
            )
            assert gap < 3.0


class TestHistory:
    def test_past_queries(self):
        db = MotionDatabase(1000.0, 0.16, 1.66, keep_history=True)
        db.register(1, 100.0, 1.0, 0.0)
        db.report(1, 150.0, -1.0, 50.0)
        assert db.query_past(115.0, 135.0, 20.0, 30.0) == {1}
        assert db.query_past(300.0, 400.0, 20.0, 30.0) == set()
        # Live queries use the current motion.
        assert db.snapshot_at(95.0, 105.0, 95.0) == {1}

    def test_history_disabled_raises(self):
        db = MotionDatabase(1000.0, 0.16, 1.66)
        db.register(1, 0.0, 1.0, 0.0)
        with pytest.raises(InvalidMotionError):
            db.query_past(0.0, 10.0, 0.0, 1.0)

    def test_deregister_keeps_history(self):
        db = MotionDatabase(1000.0, 0.16, 1.66, keep_history=True)
        db.register(1, 100.0, 1.0, 0.0)
        db.report(1, 150.0, 1.0, 50.0)
        db.deregister(1)
        assert len(db) == 0
        assert db.query_past(100.0, 160.0, 0.0, 49.0) == {1}


class TestAccounting:
    def test_io_accounting(self):
        db = MotionDatabase(1000.0, 0.16, 1.66)
        rng = random.Random(8)
        populate(db, rng, n=50)
        assert db.pages_in_use > 0
        db.clear_buffers()
        snap = db.io_snapshot()
        db.within(0.0, 500.0, 10.0, 40.0)
        assert db.io_cost_since(snap) > 0


class TestCustomFactory:
    def test_index_factory_override(self):
        from repro.indexes import DualRTreeIndex

        db = MotionDatabase(
            1000.0, 0.16, 1.66,
            index_factory=lambda m: DualRTreeIndex(m, page_capacity=8),
        )
        rng = random.Random(10)
        objects = populate(db, rng, n=60)
        from repro.core import MORQuery1D

        query = MORQuery1D(200.0, 400.0, 10.0, 40.0)
        assert db.within(200.0, 400.0, 10.0, 40.0) == brute_force_1d(
            objects, query
        )
