"""Tests for the 1-D TPR-tree comparator (extension beyond the paper)."""

import random

import pytest

from repro.core import LinearMotion1D, MORQuery1D, MobileObject1D, brute_force_1d
from repro.errors import DuplicateObjectError, ObjectNotFoundError
from repro.indexes import TPRTreeIndex
from repro.indexes.tpr import MovingInterval

from .helpers import PAPER_MODEL, random_objects, random_queries


class TestMovingInterval:
    def test_point_of_motion(self):
        motion = LinearMotion1D(100.0, 1.5, 10.0)
        interval = MovingInterval.of_motion(motion, 10.0)
        assert interval.bounds_at(10.0) == (100.0, 100.0)
        assert interval.bounds_at(20.0) == (115.0, 115.0)

    def test_union_is_conservative(self):
        a = MovingInterval(0.0, 10.0, -1.0, 1.0, 0.0)
        b = MovingInterval(20.0, 30.0, 0.5, 2.0, 0.0)
        u = a.union(b)
        for t in (0.0, 5.0, 50.0):
            for child in (a, b):
                c_lo, c_hi = child.bounds_at(t)
                u_lo, u_hi = u.bounds_at(t)
                assert u_lo <= c_lo and c_hi <= u_hi

    def test_union_rebase(self):
        a = MovingInterval(0.0, 10.0, 0.0, 0.0, 0.0)
        b = MovingInterval(100.0, 110.0, -1.0, -1.0, 50.0)
        u = a.union(b)
        assert u.t_ref == 0.0
        # b at t=0 extrapolates back to [150, 160].
        assert u.bounds_at(0.0) == (0.0, 160.0)

    def test_may_meet(self):
        # Moving up from [0, 10] at speed 1: meets [100, 110] at t ~ 90+.
        interval = MovingInterval(0.0, 10.0, 1.0, 1.0, 0.0)
        assert interval.may_meet(MORQuery1D(100.0, 110.0, 90.0, 95.0))
        assert not interval.may_meet(MORQuery1D(100.0, 110.0, 0.0, 50.0))
        assert not interval.may_meet(MORQuery1D(100.0, 110.0, 200.0, 300.0))

    def test_may_meet_growing_interval(self):
        # Diverging bounds cover everything eventually.
        interval = MovingInterval(500.0, 500.0, -1.0, 1.0, 0.0)
        assert interval.may_meet(MORQuery1D(0.0, 10.0, 490.0, 600.0))
        assert not interval.may_meet(MORQuery1D(0.0, 10.0, 0.0, 100.0))


class TestTPRTree:
    def test_conformance_with_oracle(self):
        rng = random.Random(41)
        objects = random_objects(rng, 300)
        tpr = TPRTreeIndex(PAPER_MODEL, page_capacity=8)
        for obj in objects:
            tpr.insert(obj)
        tpr.check_invariants()
        for query in random_queries(rng, 30):
            assert tpr.query(query) == brute_force_1d(objects, query)

    def test_errors(self):
        tpr = TPRTreeIndex(PAPER_MODEL, page_capacity=8)
        obj = MobileObject1D(1, LinearMotion1D(10.0, 1.0, 0.0))
        tpr.insert(obj)
        with pytest.raises(DuplicateObjectError):
            tpr.insert(obj)
        with pytest.raises(ObjectNotFoundError):
            tpr.delete(404)
        with pytest.raises(ValueError):
            TPRTreeIndex(PAPER_MODEL, page_capacity=2)

    def test_bounds_tighten_on_touch(self):
        """Rewriting a node re-anchors its bound: the root bound after a
        late insert must not balloon to the stale union."""
        tpr = TPRTreeIndex(PAPER_MODEL, page_capacity=4)
        rng = random.Random(43)
        for obj in random_objects(rng, 60, t0_max=1.0):
            tpr.insert(obj)
        root = tpr._disk.peek(tpr._root_pid)
        anchors = [mbr.t_ref for mbr, _ in root.items]
        # Insert fresh objects far in the future: touched paths re-anchor.
        for oid in range(1000, 1020):
            tpr.insert(
                MobileObject1D(
                    oid, LinearMotion1D(rng.uniform(0, 1000), 1.0, 500.0)
                )
            )
        root = tpr._disk.peek(tpr._root_pid)
        new_anchors = [mbr.t_ref for mbr, _ in root.items]
        assert max(new_anchors) >= 500.0
        assert max(new_anchors) > max(anchors)
        tpr.check_invariants()

    def test_staleness_costs_io(self):
        """Queries long after the last update pay for grown bounds."""
        rng = random.Random(47)
        objects = random_objects(rng, 800, t0_max=1.0)
        tpr = TPRTreeIndex(PAPER_MODEL, page_capacity=16)
        for obj in objects:
            tpr.insert(obj)

        def probe_cost(now):
            total = 0
            probe_rng = random.Random(5)
            for _ in range(20):
                y1 = probe_rng.uniform(0, 900)
                query = MORQuery1D(y1, y1 + 20, now, now + 10)
                tpr.clear_buffers()
                snap = tpr.snapshot()
                tpr.query(query)
                total += tpr.io_cost_since(snap)
            return total

        soon = probe_cost(now=10.0)
        late = probe_cost(now=2000.0)
        assert late > soon  # bounds have spread: weaker pruning

    def test_horizon_parameter(self):
        tpr = TPRTreeIndex(PAPER_MODEL, horizon=120.0, page_capacity=8)
        assert tpr.horizon == 120.0
        rng = random.Random(53)
        for obj in random_objects(rng, 100):
            tpr.insert(obj)
        tpr.check_invariants()

    def test_delete_everything(self):
        rng = random.Random(59)
        objects = random_objects(rng, 150)
        tpr = TPRTreeIndex(PAPER_MODEL, page_capacity=8)
        for obj in objects:
            tpr.insert(obj)
        order = list(range(150))
        rng.shuffle(order)
        for oid in order:
            tpr.delete(oid)
        assert len(tpr) == 0
        assert tpr.height == 1
        assert tpr._disk.pages_in_use == 1
