"""Units for the metrics registry, shard routers and serve-bench."""

import threading

import pytest

from repro.io_sim.stats import IOSnapshot, IOStats, combine_snapshots
from repro.service import (
    BatchExecutor,
    HashRouter,
    MetricsRegistry,
    Register,
    Report,
    ServeBenchConfig,
    ShardedMotionService,
    VelocityRouter,
    mix_oid,
    run_serve_bench,
)
from repro.core.model import LinearMotion1D


class TestHistogram:
    def test_percentiles_exact(self):
        registry = MetricsRegistry()
        metrics = registry.operation("op")
        for value in range(1, 101):
            metrics.latency_ms.record(float(value))
        assert metrics.latency_ms.percentile(50.0) == 50.0
        assert metrics.latency_ms.percentile(99.0) == 99.0
        assert metrics.latency_ms.percentile(100.0) == 100.0

    def test_empty_histogram_is_zero(self):
        registry = MetricsRegistry()
        histogram = registry.operation("op").latency_ms
        assert histogram.percentile(50.0) == 0.0
        assert histogram.mean == 0.0

    def test_bad_percentile_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.operation("op").latency_ms.percentile(101.0)


class TestRegistry:
    def test_span_records_latency_io_and_errors(self):
        registry = MetricsRegistry()
        with registry.span("query") as span:
            span.add_shard_io(0, IOSnapshot(reads=3, writes=1))
            span.add_shard_io(2, IOSnapshot(reads=2))
        with pytest.raises(RuntimeError):
            with registry.span("query"):
                raise RuntimeError("boom")
        snapshot = registry.snapshot()
        query = snapshot["operations"]["query"]
        assert query["calls"] == 2
        assert query["errors"] == 1
        assert query["reads"] == 5
        assert query["writes"] == 1
        assert query["p99_ms"] >= query["p50_ms"] >= 0.0
        assert set(snapshot["shards"]) == {0, 2}
        assert snapshot["shards"][0]["query"]["reads"] == 3

    def test_negative_deltas_clamped(self):
        registry = MetricsRegistry()
        with registry.span("op") as span:
            span.add_shard_io(0, IOSnapshot(reads=-5, writes=2))
        summary = registry.snapshot()["operations"]["op"]
        assert summary["reads"] == 0
        assert summary["writes"] == 2

    def test_concurrent_spans_count_exactly(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(200):
                with registry.span("op") as span:
                    span.add_shard_io(0, IOSnapshot(reads=1))

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        summary = registry.snapshot()["operations"]["op"]
        assert summary["calls"] == 800
        assert summary["reads"] == 800

    def test_shard_latency_spans_and_percentiles(self):
        registry = MetricsRegistry()
        for latency in (0.010, 0.020, 0.030):
            registry.record_shard_latency(0, "query_batch.compute", latency)
        registry.record_shard_latency(2, "query_batch.compute", 0.100)
        p99 = registry.shard_latency_percentile("query_batch.compute", 99.0)
        # Only shards with samples report — no zero-filled phantoms
        # to drag the rebalance detector's mean down.
        assert set(p99) == {0, 2}
        assert p99[2] >= p99[0] > 0.0
        p50 = registry.shard_latency_percentile("query_batch.compute", 50.0)
        assert p50[0] <= p99[0]
        assert registry.shard_latency_percentile("no.such.op", 99.0) == {}
        # The latency record books no I/O: a shard that only ever
        # reported compute spans shows clean read/write counts.
        snapshot = registry.snapshot()
        compute = snapshot["shards"][0]["query_batch.compute"]
        assert compute["calls"] == 3
        assert compute["reads"] == 0 and compute["writes"] == 0


class TestIOStatsListener:
    def test_listener_mirrors_every_touch(self):
        aggregate = IOStats()
        stats = IOStats(listener=aggregate)
        stats.record_read()
        stats.record_write()
        stats.record_buffer_hit()
        stats.record_read()
        assert (aggregate.reads, aggregate.writes, aggregate.buffer_hits) == (
            2, 1, 1,
        )
        stats.set_listener(None)
        stats.record_read()
        assert aggregate.reads == 2

    def test_combine_snapshots(self):
        total = combine_snapshots(
            [IOSnapshot(1, 2, 3), IOSnapshot(10, 20, 30)]
        )
        assert (total.reads, total.writes, total.buffer_hits) == (11, 22, 33)
        assert total.total == 33


class TestRouters:
    def test_hash_router_spreads_consecutive_ids(self):
        router = HashRouter(4)
        motion = LinearMotion1D(0.0, 1.0, 0.0)
        buckets = {router.route(oid, motion) for oid in range(16)}
        assert len(buckets) == 4  # not all on one shard

    def test_hash_router_deterministic(self):
        assert mix_oid(12345) == mix_oid(12345)
        router = HashRouter(7)
        motion = LinearMotion1D(0.0, 1.0, 0.0)
        assert [router.route(i, motion) for i in range(50)] == [
            router.route(i, motion) for i in range(50)
        ]

    def test_velocity_router_bands(self):
        router = VelocityRouter(4, v_max=2.0)
        assert router.route(1, LinearMotion1D(0.0, 0.1, 0.0)) == 0
        assert router.route(1, LinearMotion1D(0.0, -0.1, 0.0)) == 0
        assert router.route(1, LinearMotion1D(0.0, 1.99, 0.0)) == 3
        assert router.route(1, LinearMotion1D(0.0, 99.0, 0.0)) == 3  # clamp
        assert router.motion_sensitive

    def test_router_validation(self):
        with pytest.raises(ValueError):
            HashRouter(0)
        with pytest.raises(ValueError):
            VelocityRouter(2, v_max=0.0)


class TestBatchExecutorEpochFailures:
    def test_failed_op_does_not_leak_into_next_epoch(self):
        """Regression: a failed op in epoch 1 must not reappear in
        epoch 2's failure view.  ``last_run_failed_ops`` is rebuilt
        per epoch; only the registry's ``failed_ops`` is cumulative."""
        service = ShardedMotionService(1000.0, 0.16, 1.66, shards=2)
        with BatchExecutor(service) as executor:
            epoch1 = [
                Register(0, 100.0, 1.0, 0.0),
                Register(0, 200.0, 1.0, 0.0),  # duplicate: fails
            ]
            results = executor.run(epoch1)
            assert [result.ok for result in results] == [True, False]
            assert executor.last_run_failed_ops == {"register": 1}

            epoch2 = [Report(0, 150.0, 1.0, 1.0)]
            results = executor.run(epoch2)
            assert all(result.ok for result in results)
            assert executor.last_run_failed_ops == {}

        # The cumulative caller-observed view still remembers epoch 1.
        assert service.metrics.snapshot()["failed_ops"] == {"register": 1}


class TestServeBench:
    def test_tiny_run_reports_all_metrics(self):
        config = ServeBenchConfig(
            n=60, shards=3, batches=2, updates_per_batch=10,
            queries_per_batch=6, proximity_every=2, seed=13,
        )
        report = run_serve_bench(config)
        assert report.operations == 60 + 2 * (10 + 6) + 1
        assert report.throughput_ops_s > 0
        rendered = report.render()
        assert "ops/s" in rendered
        assert "p50_ms" in rendered and "p99_ms" in rendered
        assert "avg_io" in rendered
        op_table = report.operation_table()
        assert "register" in op_table.column("op")
        shard_table = report.shard_table()
        assert shard_table.column("shard") == [0, 1, 2]
        assert sum(shard_table.column("objects")) == 60

    def test_runs_are_seeded(self):
        config = ServeBenchConfig(
            n=40, shards=2, batches=1, updates_per_batch=5,
            queries_per_batch=3, proximity_every=0, seed=7,
        )
        a = run_serve_bench(config)
        b = run_serve_bench(config)
        # Same traffic: identical op counts and I/O totals (latency
        # differs, wall clock is real).
        ops_a = a.stats["metrics"]["operations"]
        ops_b = b.stats["metrics"]["operations"]
        assert set(ops_a) == set(ops_b)
        for name in ops_a:
            assert ops_a[name]["calls"] == ops_b[name]["calls"]
            assert ops_a[name]["reads"] == ops_b[name]["reads"]
            assert ops_a[name]["writes"] == ops_b[name]["writes"]
