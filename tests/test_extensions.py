"""Tests for the §7 future-work extensions: kNN, joins, clustering, history."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LinearMotion1D, MORQuery1D, MobileObject1D, brute_force_1d
from repro.errors import InvalidQueryError, ObjectNotFoundError
from repro.extensions import (
    HistoricalIndex,
    KNNEngine,
    VelocityBandForestIndex,
    brute_force_distance_join,
    brute_force_knn,
    index_distance_join,
    knn_at,
    min_gap,
    pair_within,
    self_join_pairs,
)
from repro.indexes import DualKDTreeIndex, HoughYForestIndex

from .helpers import PAPER_MODEL, random_objects, random_queries


class TestKNN:
    def make_engine(self, n=200, seed=1):
        rng = random.Random(seed)
        engine = KNNEngine(DualKDTreeIndex(PAPER_MODEL, leaf_capacity=8))
        objects = random_objects(rng, n)
        for obj in objects:
            engine.insert(obj)
        return engine, objects, rng

    def test_knn_matches_brute_force(self):
        engine, objects, rng = self.make_engine()
        for _ in range(25):
            y = rng.uniform(0, 1000)
            t = rng.uniform(100, 200)
            k = rng.randint(1, 12)
            got = engine.knn(y, t, k)
            expected = brute_force_knn(objects, y, t, k)
            assert [oid for oid, _ in got] == [oid for oid, _ in expected]

    def test_knn_with_updates(self):
        engine, objects, rng = self.make_engine(n=80, seed=2)
        replacement = MobileObject1D(
            0, LinearMotion1D(500.0, 1.0, 150.0)
        )
        engine.update(replacement)
        objects[0] = replacement
        got = engine.knn(500.0, 150.0, 1)
        assert got[0][0] == 0
        assert got[0][1] == 0.0

    def test_k_larger_than_population(self):
        engine, objects, _ = self.make_engine(n=5, seed=3)
        got = engine.knn(500.0, 120.0, 50)
        assert len(got) == 5

    def test_empty_population(self):
        engine = KNNEngine(DualKDTreeIndex(PAPER_MODEL, leaf_capacity=8))
        assert engine.knn(0.0, 0.0, 3) == []

    def test_validation(self):
        engine, _, _ = self.make_engine(n=5, seed=4)
        with pytest.raises(InvalidQueryError):
            engine.knn(0.0, 0.0, 0)
        with pytest.raises(InvalidQueryError):
            knn_at(
                engine.index, engine._motions.__getitem__, 0.0, 0.0, 1,
                growth=1.0,
            )

    def test_delete_then_knn(self):
        engine, objects, rng = self.make_engine(n=30, seed=5)
        for obj in objects[:10]:
            engine.delete(obj.oid)
        got = engine.knn(500.0, 120.0, 5)
        assert all(oid >= 10 for oid, _ in got)


class TestMinGap:
    def test_crossing_pair_gap_zero(self):
        a = LinearMotion1D(0.0, 1.0)
        b = LinearMotion1D(10.0, -1.0)
        assert min_gap(a, b, 0.0, 10.0) == 0.0

    def test_diverging_pair(self):
        a = LinearMotion1D(0.0, 1.0)
        b = LinearMotion1D(10.0, 1.5)
        assert min_gap(a, b, 0.0, 10.0) == 10.0  # closest at t=0
        assert pair_within(a, b, 10.0, 0.0, 10.0)
        assert not pair_within(a, b, 9.9, 0.0, 10.0)

    def test_window_validation(self):
        a = LinearMotion1D(0.0, 1.0)
        with pytest.raises(InvalidQueryError):
            min_gap(a, a, 5.0, 1.0)

    def test_gap_min_inside_window(self):
        # They would cross at t=20, outside [0, 10]: min gap at t=10.
        a = LinearMotion1D(0.0, 1.0)
        b = LinearMotion1D(10.0, 0.5)
        assert min_gap(a, b, 0.0, 10.0) == pytest.approx(5.0)


class TestDistanceJoin:
    def test_index_join_matches_brute_force(self):
        rng = random.Random(11)
        objects = random_objects(rng, 120)
        index = HoughYForestIndex(PAPER_MODEL, c=4, leaf_capacity=16)
        motions = {}
        for obj in objects:
            index.insert(obj)
            motions[obj.oid] = obj.motion
        outer = objects[:40]
        got = index_distance_join(
            outer, index, motions.__getitem__, d=5.0, t1=120.0, t2=150.0
        )
        expected = brute_force_distance_join(
            outer, objects, 5.0, 120.0, 150.0
        )
        assert got == expected

    def test_self_join_unordered_pairs(self):
        rng = random.Random(13)
        objects = random_objects(rng, 60)
        index = DualKDTreeIndex(PAPER_MODEL, leaf_capacity=8)
        for obj in objects:
            index.insert(obj)
        pairs = self_join_pairs(objects, index, d=3.0, t1=100.0, t2=120.0)
        for a, b in pairs:
            assert a < b
        expected = {
            (min(a, b), max(a, b))
            for a, b in brute_force_distance_join(
                objects, objects, 3.0, 100.0, 120.0
            )
        }
        assert pairs == expected

    def test_negative_distance_rejected(self):
        index = DualKDTreeIndex(PAPER_MODEL, leaf_capacity=8)
        with pytest.raises(InvalidQueryError):
            index_distance_join([], index, lambda o: None, -1.0, 0.0, 1.0)


class TestVelocityBandForest:
    def test_matches_brute_force(self):
        rng = random.Random(17)
        objects = random_objects(rng, 250)
        index = VelocityBandForestIndex(
            PAPER_MODEL, bands=3, c=2, leaf_capacity=8
        )
        for obj in objects:
            index.insert(obj)
        assert len(index) == 250
        for query in random_queries(rng, 25):
            assert index.query(query) == brute_force_1d(objects, query)

    def test_clustering_reduces_false_positives(self):
        """The §7 clustering idea: per-band spreads shrink eq. (1)'s E."""
        rng = random.Random(19)
        objects = random_objects(rng, 400)
        queries = random_queries(rng, 40, yq_max=100.0, tw_max=40.0)
        waste = {}
        for bands in (1, 4):
            index = VelocityBandForestIndex(
                PAPER_MODEL, bands=bands, c=4, leaf_capacity=32
            )
            for obj in objects:
                index.insert(obj)
            fetched = exact = 0
            for query in queries:
                f, e = index.approximation_overhead(query)
                fetched += f
                exact += e
            waste[bands] = fetched - exact
        assert waste[4] < waste[1] / 2

    def test_validation_and_deletes(self):
        with pytest.raises(ValueError):
            VelocityBandForestIndex(PAPER_MODEL, bands=0)
        index = VelocityBandForestIndex(PAPER_MODEL, bands=2, c=2,
                                        leaf_capacity=8)
        obj = MobileObject1D(1, LinearMotion1D(10.0, 1.0))
        index.insert(obj)
        index.delete(1)
        assert len(index) == 0
        with pytest.raises(ObjectNotFoundError):
            index.delete(1)


class TestHistoricalIndex:
    def make(self):
        return HistoricalIndex(
            PAPER_MODEL, DualKDTreeIndex(PAPER_MODEL, leaf_capacity=8)
        )

    def test_live_queries_still_work(self):
        index = self.make()
        rng = random.Random(23)
        objects = random_objects(rng, 80, t0_max=10.0)
        # History is append-only: writes must arrive in time order.
        objects.sort(key=lambda o: o.motion.t0)
        for obj in objects:
            index.insert(obj)
        for query in random_queries(rng, 10, t_now=20.0):
            assert index.query(query) == brute_force_1d(objects, query)

    def test_past_query_sees_superseded_motion(self):
        index = self.make()
        # Object 1 heads up from 100 at t=0, then reverses at t=50.
        index.insert(MobileObject1D(1, LinearMotion1D(100.0, 1.0, 0.0)))
        index.update(MobileObject1D(1, LinearMotion1D(150.0, -1.0, 50.0)))
        # During [20, 30] it was around 120..130 (the OLD motion).
        assert index.query_past(MORQuery1D(115.0, 135.0, 20.0, 30.0)) == {1}
        # The live index, extrapolating the new motion backwards, would
        # be wrong about the past — the archive is what answers.
        assert index.query_past(MORQuery1D(165.0, 185.0, 20.0, 30.0)) == set()

    def test_past_query_clips_validity(self):
        index = self.make()
        index.insert(MobileObject1D(1, LinearMotion1D(0.0, 1.0, 0.0)))
        index.update(MobileObject1D(1, LinearMotion1D(0.0, 1.0, 40.0)))
        # Old version valid [0, 40): it never reached y=80 while valid;
        # a past query about [75, 85] x [30, 39] must be empty even
        # though unbounded extrapolation would say yes at t=80.
        assert index.query_past(MORQuery1D(75.0, 85.0, 30.0, 39.0)) == set()
        # But position 35 at t=35 was real.
        assert index.query_past(MORQuery1D(30.0, 40.0, 30.0, 39.0)) == {1}

    def test_deleted_objects_remain_in_history(self):
        index = self.make()
        index.insert(MobileObject1D(1, LinearMotion1D(500.0, 1.0, 0.0)))
        index.delete(1, now=30.0)
        assert len(index) == 0
        assert index.archived_versions == 1
        assert index.query_past(MORQuery1D(495.0, 530.0, 0.0, 25.0)) == {1}
        # After its deletion the object no longer exists.
        assert index.query_past(MORQuery1D(0.0, 1000.0, 31.0, 60.0)) == set()

    def test_time_ordering_enforced(self):
        index = self.make()
        index.insert(MobileObject1D(1, LinearMotion1D(0.0, 1.0, 100.0)))
        with pytest.raises(InvalidQueryError):
            index.insert(MobileObject1D(2, LinearMotion1D(0.0, 1.0, 50.0)))
        with pytest.raises(ObjectNotFoundError):
            index.update(MobileObject1D(9, LinearMotion1D(0.0, 1.0, 200.0)))
        with pytest.raises(ObjectNotFoundError):
            index.delete(9)

    def test_past_matches_replayed_brute_force(self):
        """Archive answers equal a replay of the true motion history."""
        rng = random.Random(29)
        index = self.make()
        history = {}  # oid -> list of (t_from, motion)
        t = 0.0
        for oid in range(40):
            motion = LinearMotion1D(
                rng.uniform(0, 1000),
                rng.choice([-1, 1]) * rng.uniform(0.16, 1.66),
                t,
            )
            index.insert(MobileObject1D(oid, motion))
            history[oid] = [(t, motion)]
        for step in range(60):
            t += 5.0
            oid = rng.randrange(40)
            motion = LinearMotion1D(
                rng.uniform(0, 1000),
                rng.choice([-1, 1]) * rng.uniform(0.16, 1.66),
                t,
            )
            index.update(MobileObject1D(oid, motion))
            history[oid].append((t, motion))
        horizon = t

        def replay(query):
            answer = set()
            for oid, versions in history.items():
                for i, (t_from, motion) in enumerate(versions):
                    t_to = (
                        versions[i + 1][0]
                        if i + 1 < len(versions)
                        else max(horizon, query.t2)
                    )
                    lo_t = max(query.t1, t_from)
                    hi_t = min(query.t2, t_to)
                    if lo_t > hi_t:
                        continue
                    lo = min(motion.position(lo_t), motion.position(hi_t))
                    hi = max(motion.position(lo_t), motion.position(hi_t))
                    if lo <= query.y2 and hi >= query.y1:
                        answer.add(oid)
                        break
            return answer

        for _ in range(25):
            y1 = rng.uniform(0, 900)
            t1 = rng.uniform(0, horizon - 20)
            query = MORQuery1D(
                y1, y1 + rng.uniform(5, 100), t1, t1 + rng.uniform(0, 20)
            )
            assert index.query_past(query) == replay(query)
