"""Unit tests: the columnar store and the vectorized kernels.

The property suite (test_vector_properties) covers random agreement
with the scalar predicates; here the deterministic corners live — the
swap-with-last delete bookkeeping, capacity growth, listener dialect,
k-NN tie-breaks and the blocked pairwise proximity kernel against the
brute-force join oracle.
"""

import random

import numpy as np
import pytest

from repro.core import LinearMotion1D, MobileObject1D
from repro.errors import InvalidQueryError
from repro.extensions.joins import brute_force_distance_join
from repro.vector.columns import MotionColumns
from repro.vector.evaluate import evaluate_batch, evaluate_query
from repro.vector.kernels import (
    knn_distances,
    knn_select,
    proximity_pairs_blocked,
)
from repro.vector.ops import (
    Nearest,
    ProximityPairs,
    SnapshotAt,
    Within,
    query_key,
)

pytestmark = pytest.mark.batch


def motion(y0=0.0, v=1.0, t0=0.0):
    return LinearMotion1D(y0, v, t0)


# -- MotionColumns ------------------------------------------------------------


class TestMotionColumns:
    def test_upsert_insert_and_overwrite(self):
        columns = MotionColumns()
        columns.upsert(7, motion(10.0, 1.0, 0.0))
        columns.upsert(7, motion(20.0, -1.0, 5.0))
        assert len(columns) == 1
        m = columns.motion_of(7)
        assert (m.y0, m.v, m.t0) == (20.0, -1.0, 5.0)

    def test_delete_swaps_last_row_into_hole(self):
        columns = MotionColumns()
        for oid in range(5):
            columns.upsert(oid, motion(float(oid)))
        columns.delete(1)
        assert len(columns) == 4
        assert 1 not in columns
        # The moved row (oid 4) must still resolve correctly.
        assert columns.motion_of(4).y0 == 4.0
        oid_col, y0_col, _, _ = columns.arrays()
        assert sorted(oid_col.tolist()) == [0, 2, 3, 4]
        assert dict(zip(oid_col.tolist(), y0_col.tolist()))[4] == 4.0

    def test_delete_missing_is_a_noop(self):
        columns = MotionColumns()
        columns.upsert(1, motion())
        version = columns.version
        columns.delete(99)
        assert len(columns) == 1
        assert columns.version == version

    def test_growth_past_initial_capacity(self):
        columns = MotionColumns(capacity=4)
        for oid in range(100):
            columns.upsert(oid, motion(float(oid)))
        assert len(columns) == 100
        oid_col, y0_col, _, _ = columns.arrays()
        assert oid_col.tolist() == sorted(oid_col.tolist())
        assert y0_col.tolist() == [float(o) for o in oid_col.tolist()]

    def test_version_increments_on_every_mutation(self):
        columns = MotionColumns()
        v0 = columns.version
        columns.upsert(1, motion())
        columns.upsert(1, motion(5.0))
        columns.delete(1)
        columns.clear()
        assert columns.version == v0 + 4

    def test_listener_speaks_the_trace_dialect(self):
        columns = MotionColumns()
        listener = columns.as_listener()
        listener("insert", 1, motion(1.0))
        listener("update", 1, motion(2.0))
        listener("delete", 1, None)
        assert len(columns) == 0
        listener("insert", 2, motion(3.0))
        assert columns.motion_of(2).y0 == 3.0

    def test_from_motions_round_trips(self):
        source = {oid: motion(float(oid), 1.0, 0.0) for oid in range(10)}
        columns = MotionColumns.from_motions(source)
        assert dict(columns.motions()).keys() == source.keys()
        assert all(
            columns.motion_of(oid).y0 == m.y0 for oid, m in source.items()
        )


# -- query_key ---------------------------------------------------------------


def test_query_key_distinguishes_kinds_and_buckets():
    keys = {
        query_key(Within(0.0, 1.0, 2.0, 3.0)),
        query_key(SnapshotAt(0.0, 1.0, 2.0)),
        query_key(Nearest(0.0, 1.0, 2)),
        query_key(ProximityPairs(0.5, 1.0, 2.0)),
        query_key(Within(0.0, 1.0, 2.0, 3.0), bucket=1),
    }
    assert len(keys) == 5
    with pytest.raises(TypeError):
        query_key("not a query")


# -- k-NN selection -----------------------------------------------------------


def test_knn_select_ties_break_toward_smaller_oid():
    oid = np.array([9, 3, 5], dtype=np.int64)
    dist = np.array([1.0, 1.0, 0.5])
    assert knn_select(oid, dist, 2) == [(5, 0.5), (3, 1.0)]
    assert knn_select(oid, dist, 10) == [(5, 0.5), (3, 1.0), (9, 1.0)]
    assert knn_select(oid, dist, 0) == []


def test_knn_distances_at_instant():
    columns = MotionColumns.from_motions({
        1: motion(0.0, 1.0, 0.0),   # at t=10: y=10
        2: motion(30.0, -1.0, 0.0),  # at t=10: y=20
    })
    oid, y0, v, t0 = columns.arrays()
    dist = knn_distances(y0, v, t0, 12.0, 10.0)
    assert dict(zip(oid.tolist(), dist.tolist())) == {1: 2.0, 2: 8.0}


# -- pairwise proximity -------------------------------------------------------


@pytest.mark.parametrize("block", [1, 3, 512])
def test_blocked_proximity_matches_brute_force(block):
    rng = random.Random(11)
    objects = [
        MobileObject1D(
            oid,
            motion(
                rng.uniform(0, 100),
                rng.uniform(-2.0, 2.0),
                rng.uniform(0, 3),
            ),
        )
        for oid in range(40)
    ]
    columns = MotionColumns.from_motions(
        {o.oid: o.motion for o in objects}
    )
    oid, y0, v, t0 = columns.arrays()
    got = proximity_pairs_blocked(oid, y0, v, t0, 4.0, 5.0, 12.0, block=block)
    directed = brute_force_distance_join(objects, objects, 4.0, 5.0, 12.0)
    expected = {(min(a, b), max(a, b)) for a, b in directed}
    assert got == expected


def test_proximity_trivial_populations():
    empty = MotionColumns()
    assert proximity_pairs_blocked(*empty.arrays(), 1.0, 0.0, 1.0) == set()
    single = MotionColumns.from_motions({1: motion()})
    assert proximity_pairs_blocked(*single.arrays(), 1.0, 0.0, 1.0) == set()


# -- evaluate dispatch --------------------------------------------------------


def test_evaluate_query_contracts():
    columns = MotionColumns.from_motions({
        1: motion(10.0, 1.0, 0.0),
        2: motion(500.0, -1.0, 0.0),
    })
    assert evaluate_query(columns, Within(0.0, 50.0, 0.0, 10.0)) == {1}
    assert evaluate_query(columns, SnapshotAt(0.0, 50.0, 5.0)) == {1}
    assert evaluate_query(columns, Nearest(16.0, 5.0, k=2)) == [
        (1, 1.0),
        (2, 479.0),
    ]
    with pytest.raises(InvalidQueryError, match="k must be positive"):
        evaluate_query(columns, Nearest(0.0, 0.0, k=0))
    with pytest.raises(InvalidQueryError, match="distance must be >= 0"):
        evaluate_query(columns, ProximityPairs(-1.0, 0.0, 1.0))
    with pytest.raises(InvalidQueryError, match="empty window"):
        evaluate_query(columns, ProximityPairs(1.0, 5.0, 1.0))
    with pytest.raises(TypeError):
        evaluate_query(columns, "nonsense")


def test_evaluate_batch_preserves_order():
    columns = MotionColumns.from_motions({1: motion(10.0, 1.0, 0.0)})
    ops = [
        SnapshotAt(0.0, 50.0, 5.0),
        Within(900.0, 950.0, 0.0, 1.0),
        Nearest(0.0, 0.0, k=1),
    ]
    assert evaluate_batch(columns, ops) == [{1}, set(), [(1, 10.0)]]
