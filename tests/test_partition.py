"""Tests for simplicial partitions and the (dynamic) partition tree."""

import math
import random

import pytest

from repro.core import ConvexRegion, HalfPlane
from repro.errors import DuplicateObjectError, ObjectNotFoundError
from repro.io_sim import DiskSimulator
from repro.partition import (
    DynamicPartitionTree,
    Line,
    PartitionTree,
    Triangle,
    bounding_triangle,
    crossing_number,
    simplicial_partition,
)


def random_entries(rng, n, span=100.0):
    return [
        ((rng.uniform(0, span), rng.uniform(0, span)), i) for i in range(n)
    ]


def halfplane_region(a, b, c):
    return ConvexRegion((HalfPlane(a, b, c),))


class TestGeometry:
    def test_line_through(self):
        line = Line.through((0, 0), (1, 1))
        assert line.side((0, 1)) != line.side((1, 0))
        assert line.side((2, 2)) == 0
        with pytest.raises(ValueError):
            Line.through((1, 1), (1, 1))

    def test_triangle_contains(self):
        tri = Triangle((0, 0), (4, 0), (2, 4))
        assert tri.contains((2, 1))
        assert tri.contains((0, 0))  # vertex
        assert tri.contains((2, 0))  # edge
        assert not tri.contains((4, 4))

    def test_triangle_crossed_by(self):
        tri = Triangle((0, 0), (4, 0), (2, 4))
        assert tri.crossed_by(Line.through((0, 1), (4, 1)))
        assert not tri.crossed_by(Line.through((0, 10), (4, 10)))

    def test_triangle_region_tests(self):
        tri = Triangle((0, 0), (2, 0), (1, 2))
        inside = halfplane_region(0, -1, 1)  # y >= -1
        outside = halfplane_region(0, 1, -1)  # y <= -1
        assert tri.inside_region(inside)
        assert tri.outside_region(outside)
        crossing = halfplane_region(0, 1, 1)  # y <= 1
        assert not tri.inside_region(crossing)
        assert not tri.outside_region(crossing)

    def test_bounding_triangle_covers(self):
        rng = random.Random(2)
        points = [(rng.uniform(-5, 5), rng.uniform(-5, 5)) for _ in range(200)]
        tri = bounding_triangle(points)
        assert all(tri.contains(p) for p in points)
        with pytest.raises(ValueError):
            bounding_triangle([])


class TestSimplicialPartition:
    def test_partitions_cover_and_balance(self):
        rng = random.Random(7)
        entries = random_entries(rng, 400)
        cells = simplicial_partition(entries, r=16, rng=rng)
        covered = [e for cell, _ in cells for e in cell]
        assert sorted(oid for _, oid in covered) == list(range(400))
        # Triangles contain their points.
        for cell, triangle in cells:
            assert all(triangle.contains(p) for p, _ in cell)
        # Cells are bounded by twice the target size.
        target = math.ceil(400 / 16)
        assert max(len(cell) for cell, _ in cells) <= 2 * target

    def test_empirical_crossing_number_is_sublinear(self):
        rng = random.Random(11)
        entries = random_entries(rng, 800)
        r = 36
        cells = simplicial_partition(entries, r=r, rng=rng)
        # Average crossings over random probe lines must be well below the
        # cell count (a random partition would cross ~half the cells).
        probes = []
        for _ in range(60):
            p = (rng.uniform(0, 100), rng.uniform(0, 100))
            q = (rng.uniform(0, 100), rng.uniform(0, 100))
            if p != q:
                probes.append(Line.through(p, q))
        avg = sum(crossing_number(cells, l) for l in probes) / len(probes)
        assert avg <= 0.7 * len(cells)
        assert avg <= 6.0 * math.sqrt(len(cells))

    def test_degenerate_inputs(self):
        rng = random.Random(3)
        assert simplicial_partition([], r=4, rng=rng) == []
        single = [((1.0, 2.0), "a")]
        cells = simplicial_partition(single, r=4, rng=rng)
        assert len(cells) == 1
        with pytest.raises(ValueError):
            simplicial_partition(single, r=0, rng=rng)

    def test_duplicate_points(self):
        rng = random.Random(5)
        entries = [((1.0, 1.0), i) for i in range(50)]
        cells = simplicial_partition(entries, r=8, rng=rng)
        assert sum(len(cell) for cell, _ in cells) == 50


class TestPartitionTree:
    def test_build_and_query_matches_brute_force(self):
        rng = random.Random(13)
        entries = random_entries(rng, 600)
        tree = PartitionTree(
            DiskSimulator(), entries, leaf_capacity=8, internal_capacity=32
        )
        tree.check_invariants()
        for _ in range(25):
            a, b = rng.uniform(-1, 1), rng.uniform(-1, 1)
            if a == 0 and b == 0:
                continue
            c = rng.uniform(-50, 150)
            region = ConvexRegion(
                (HalfPlane(a, b, c), HalfPlane(0, -1, 0), HalfPlane(0, 1, 100))
            )
            expected = {
                oid for p, oid in entries if region.contains(p[0], p[1])
            }
            assert set(tree.query(region)) == expected

    def test_inside_cells_are_reported_wholesale(self):
        rng = random.Random(17)
        entries = random_entries(rng, 300)
        tree = PartitionTree(DiskSimulator(), entries, leaf_capacity=8)
        everything = ConvexRegion((HalfPlane(0, 1, 1e9),))
        assert sorted(tree.query(everything)) == list(range(300))

    def test_empty_tree(self):
        tree = PartitionTree(DiskSimulator(), [], leaf_capacity=8)
        assert len(tree) == 0
        assert tree.query(ConvexRegion((HalfPlane(0, 1, 1e9),))) == []

    def test_duplicate_heavy_data_builds(self):
        entries = [((5.0, 5.0), i) for i in range(100)]
        tree = PartitionTree(DiskSimulator(), entries, leaf_capacity=8)
        tree.check_invariants()
        assert sorted(tree.items(), key=lambda e: e[1])[0][0] == (5.0, 5.0)
        everything = ConvexRegion((HalfPlane(0, 1, 1e9),))
        assert len(tree.query(everything)) == 100

    def test_destroy_frees_pages(self):
        disk = DiskSimulator()
        rng = random.Random(19)
        tree = PartitionTree(disk, random_entries(rng, 200), leaf_capacity=8)
        assert disk.pages_in_use > 1
        tree.destroy()
        assert disk.pages_in_use == 0

    def test_query_io_is_sublinear(self):
        """Wedge query I/O must be far below a full scan (paper's point)."""
        disk = DiskSimulator(buffer_pages=0)
        rng = random.Random(23)
        entries = random_entries(rng, 3000)
        tree = PartitionTree(disk, entries, leaf_capacity=16)
        total_pages = disk.pages_in_use
        # A thin slab query selecting ~2% of the points.
        region = ConvexRegion(
            (HalfPlane(-1, 0, -49.0), HalfPlane(1, 0, 51.0))
        )
        before = disk.stats.snapshot()
        result = tree.query(region)
        delta = disk.stats.snapshot() - before
        assert len(result) < 200
        assert delta.reads < 0.55 * total_pages


class TestDynamicPartitionTree:
    def test_insert_query_delete(self):
        disk = DiskSimulator()
        tree = DynamicPartitionTree(disk, leaf_capacity=8)
        rng = random.Random(29)
        entries = random_entries(rng, 200)
        for p, oid in entries:
            tree.insert(p, oid)
        tree.check_invariants()
        region = halfplane_region(1, 0, 50.0)  # x <= 50
        expected = {oid for p, oid in entries if p[0] <= 50.0}
        assert tree.query(region) == expected
        # Slots follow the binary representation of the size.
        assert len(tree) == 200

    def test_duplicate_and_missing(self):
        tree = DynamicPartitionTree(DiskSimulator(), leaf_capacity=8)
        tree.insert((1, 1), "a")
        with pytest.raises(DuplicateObjectError):
            tree.insert((2, 2), "a")
        with pytest.raises(ObjectNotFoundError):
            tree.delete("ghost")

    def test_weak_delete_then_rebuild(self):
        disk = DiskSimulator()
        tree = DynamicPartitionTree(disk, leaf_capacity=8)
        rng = random.Random(31)
        entries = random_entries(rng, 128)
        for p, oid in entries:
            tree.insert(p, oid)
        # Delete 70 objects: crosses the half-tombstone threshold.
        for _, oid in entries[:70]:
            tree.delete(oid)
        tree.check_invariants()
        region = halfplane_region(0, 1, 1e9)
        assert tree.query(region) == {oid for _, oid in entries[70:]}

    def test_churn_matches_brute_force(self):
        tree = DynamicPartitionTree(DiskSimulator(), leaf_capacity=4)
        rng = random.Random(37)
        live = {}
        next_id = 0
        for step in range(400):
            if live and rng.random() < 0.4:
                oid = rng.choice(list(live))
                tree.delete(oid)
                del live[oid]
            else:
                p = (rng.uniform(0, 100), rng.uniform(0, 100))
                tree.insert(p, next_id)
                live[next_id] = p
                next_id += 1
            if step % 100 == 0:
                tree.check_invariants()
        region = ConvexRegion((HalfPlane(1, 1, 100.0),))  # x + y <= 100
        expected = {oid for oid, p in live.items() if p[0] + p[1] <= 100.0}
        assert tree.query(region) == expected

    def test_pages_freed_on_rebuild(self):
        """Space stays linear: destroyed slots release their pages."""
        disk = DiskSimulator()
        tree = DynamicPartitionTree(disk, leaf_capacity=8)
        rng = random.Random(41)
        for p, oid in random_entries(rng, 500):
            tree.insert(p, oid)
        # 500 points at >= 4 records/page (half-full) is well under 300 pages.
        assert disk.pages_in_use < 300
