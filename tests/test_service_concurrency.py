"""Concurrency stress: interleaved batch updates + queries, ≥4 threads.

The invariants under fire:

* **no lost updates** — each writer thread owns a disjoint oid slice
  and reports motions with increasing timestamps; afterwards every
  object's motion must be exactly the last one its writer reported;
* **no duplicate oids across shards** — shard populations partition
  the catalog at all times (checked at the end, and duplicate
  registration must fail no matter which thread wins the race);
* **monotone per-shard ``now``** — a monitor thread samples every
  shard's clock throughout the run; each shard's sequence of samples
  must be non-decreasing.
"""

import random
import threading
import time

import pytest

from repro.errors import InvalidMotionError
from repro.service import (
    BatchExecutor,
    Nearest,
    Register,
    Report,
    ShardedMotionService,
    SnapshotAt,
    Within,
)

Y_MAX, V_MIN, V_MAX = 1000.0, 0.16, 1.66
WRITERS = 4
OIDS_PER_WRITER = 25
ROUNDS = 8


def _motion(rng):
    speed = rng.uniform(V_MIN, V_MAX)
    direction = 1 if rng.random() < 0.5 else -1
    return rng.uniform(0.0, Y_MAX), direction * speed


@pytest.mark.parametrize("router", ["hash", "velocity"])
def test_interleaved_batches_keep_invariants(router):
    service = ShardedMotionService(
        Y_MAX, V_MIN, V_MAX, shards=4, router=router
    )
    executor = BatchExecutor(service, max_workers=8)
    errors = []
    last_reported = [dict() for _ in range(WRITERS)]
    clock_samples = [[] for _ in range(service.shard_count)]
    stop_monitor = threading.Event()

    # Seed the population up front so queries always have objects.
    seed_rng = random.Random(100)
    seed_batch = []
    for writer in range(WRITERS):
        for slot in range(OIDS_PER_WRITER):
            oid = writer * OIDS_PER_WRITER + slot
            y0, v = _motion(seed_rng)
            seed_batch.append(Register(oid, y0, v, 0.0))
            last_reported[writer][oid] = (y0, v, 0.0)
    assert all(r.ok for r in executor.run(seed_batch))

    def monitor():
        while not stop_monitor.is_set():
            for shard, now in enumerate(service.shard_now()):
                clock_samples[shard].append(now)
            time.sleep(0.001)

    def writer_loop(writer):
        rng = random.Random(1000 + writer)
        try:
            for round_no in range(ROUNDS):
                batch = []
                t_base = float(round_no + 1)
                for slot in range(OIDS_PER_WRITER):
                    oid = writer * OIDS_PER_WRITER + slot
                    y0, v = _motion(rng)
                    t0 = t_base + slot / (10.0 * OIDS_PER_WRITER)
                    batch.append(Report(oid, y0, v, t0))
                    last_reported[writer][oid] = (y0, v, t0)
                for result in executor.run(batch):
                    if not result.ok:
                        raise result.error
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    def reader_loop(reader):
        rng = random.Random(2000 + reader)
        try:
            for _ in range(ROUNDS * 2):
                batch = [
                    Within(rng.uniform(0, 800), 900.0, 1.0, 30.0),
                    SnapshotAt(0.0, Y_MAX, rng.uniform(1.0, 20.0)),
                    Nearest(rng.uniform(0, Y_MAX), 10.0, k=3),
                ]
                for result in executor.run(batch):
                    if not result.ok:
                        raise result.error
                    assert result.value is not None
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=monitor)]
    threads += [
        threading.Thread(target=writer_loop, args=(w,))
        for w in range(WRITERS)
    ]
    threads += [
        threading.Thread(target=reader_loop, args=(r,)) for r in range(2)
    ]
    for thread in threads[1:]:
        thread.start()
    threads[0].start()
    for thread in threads[1:]:
        thread.join()
    stop_monitor.set()
    threads[0].join()
    executor.close()

    assert not errors, errors

    # No lost updates: final motion == last reported, per writer slice.
    for writer in range(WRITERS):
        for oid, (y0, v, t0) in last_reported[writer].items():
            assert service.location_of(oid, t0 + 7.0) == pytest.approx(
                y0 + v * 7.0
            ), f"oid {oid} lost its last update"

    # No duplicate oids across shards; populations partition the catalog.
    populations = service.shard_populations()
    total = sum(len(p) for p in populations)
    union = set().union(*populations)
    assert total == len(union) == len(service) == WRITERS * OIDS_PER_WRITER

    # Monotone per-shard clocks.
    for shard, samples in enumerate(clock_samples):
        assert samples == sorted(samples), f"shard {shard} clock regressed"
        assert samples[-1] <= service.shard_now()[shard] + 1e-9

    # Metrics observed the traffic.
    stats = service.service_stats()
    ops = stats["metrics"]["operations"]
    assert ops["report"]["calls"] == WRITERS * OIDS_PER_WRITER * ROUNDS
    assert ops["within"]["calls"] == 2 * ROUNDS * 2
    assert ops["report"]["p99_ms"] >= ops["report"]["p50_ms"] >= 0.0


def test_racing_duplicate_registration_single_winner():
    """Many threads register the same oid: exactly one wins, the rest
    get InvalidMotionError, and the object exists on exactly one shard."""
    service = ShardedMotionService(Y_MAX, V_MIN, V_MAX, shards=4)
    outcomes = []
    barrier = threading.Barrier(8)

    def racer(i):
        barrier.wait()
        try:
            service.register(42, 100.0 + i, 1.0, 0.0)
            outcomes.append("won")
        except InvalidMotionError:
            outcomes.append("lost")

    threads = [threading.Thread(target=racer, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert outcomes.count("won") == 1
    assert outcomes.count("lost") == 7
    populations = service.shard_populations()
    assert sum(len(p) for p in populations) == 1


def test_concurrent_mixed_direct_calls():
    """Direct (non-batched) service calls from many threads stay safe:
    every thread hammers updates and queries on the same service."""
    service = ShardedMotionService(Y_MAX, V_MIN, V_MAX, shards=4)
    for oid in range(40):
        service.register(oid, 10.0 + oid * 20.0, 1.0, 0.0)
    errors = []

    def worker(seed):
        rng = random.Random(seed)
        try:
            for i in range(60):
                choice = rng.random()
                if choice < 0.4:
                    oid = rng.randrange(40)
                    y0, v = _motion(rng)
                    service.report(oid, y0, v, float(i))
                elif choice < 0.7:
                    service.within(
                        rng.uniform(0, 500), 700.0, float(i), float(i) + 10.0
                    )
                else:
                    service.nearest(rng.uniform(0, Y_MAX), float(i), k=2)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(3000 + t,)) for t in range(6)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    assert len(service) == 40
    populations = service.shard_populations()
    assert sum(len(p) for p in populations) == 40
