"""Concurrency: subscription churn racing advance() and writes.

Eight threads — four writers on disjoint oid slices, one clock
advancer, two subscribe/cancel churners, one reader — hammer one
manager.  Afterwards the system must be exactly consistent:

* every persistent subscription's delta stream replays from its
  initial result to its final result (no lost deltas, no
  double-fires — ``replay_deltas`` raises on either);
* the final result equals a fresh one-shot query against the service;
* the ``MetricsRegistry`` delta counter equals the number of deltas
  actually delivered (drained + returned by ``cancel``), so nothing
  vanished between the manager and its observers.
"""

import random
import threading

import pytest

from repro.service import ShardedMotionService, SubscriptionManager, replay_deltas

pytestmark = pytest.mark.subscription

Y_MAX, V_MIN, V_MAX = 1000.0, 0.16, 1.66

WRITERS = 4
OIDS_PER_WRITER = 20
REPORTS_PER_WRITER = 60
ADVANCES = 30
CHURNERS = 2
CHURN_ROUNDS = 15
PERSISTENT_SUBS = 12


def test_churn_racing_advance_and_writes_stays_consistent():
    rng = random.Random(4242)
    service = ShardedMotionService(Y_MAX, V_MIN, V_MAX, shards=4)
    total_oids = WRITERS * OIDS_PER_WRITER
    for oid in range(total_oids):
        speed = rng.uniform(V_MIN, V_MAX)
        service.register(
            oid, rng.uniform(0.0, Y_MAX),
            speed if rng.random() < 0.5 else -speed, 0.0,
        )

    manager = SubscriptionManager(service)
    persistent = {}
    for i in range(PERSISTENT_SUBS):
        y1 = rng.uniform(0.0, Y_MAX * 0.8)
        y2 = y1 + rng.uniform(0.05, 0.2) * Y_MAX
        if i % 3 == 0:
            sid = manager.subscribe_within(y1, y2, rng.uniform(2.0, 8.0))
            persistent[sid] = ("within", (y1, y2))
        elif i % 3 == 1:
            sid = manager.subscribe_snapshot(y1, y2)
            persistent[sid] = ("snapshot", (y1, y2))
        else:
            sid = manager.subscribe_proximity(rng.uniform(3.0, 10.0))
            persistent[sid] = ("proximity", None)
    initial = {sid: set(manager.result(sid)) for sid in persistent}
    collected = {sid: [] for sid in persistent}

    errors = []
    delivered_lock = threading.Lock()
    delivered = [0]  # deltas that reached an observer

    def note_delivered(n):
        with delivered_lock:
            delivered[0] += n

    def writer(slot):
        try:
            wrng = random.Random(1000 + slot)
            oids = range(
                slot * OIDS_PER_WRITER, (slot + 1) * OIDS_PER_WRITER
            )
            for i in range(REPORTS_PER_WRITER):
                oid = wrng.choice(list(oids))
                speed = wrng.uniform(V_MIN, V_MAX)
                service.report(
                    oid,
                    wrng.uniform(0.0, Y_MAX),
                    speed if wrng.random() < 0.5 else -speed,
                    i * 0.01,
                )
        except Exception as exc:  # pragma: no cover - failure capture
            errors.append(("writer", slot, exc))

    def advancer():
        try:
            for i in range(1, ADVANCES + 1):
                fired = manager.advance(i * 0.37)
                note_delivered(0)  # fired deltas stay in the per-sub
                # logs until drained; count them at drain time only.
                del fired
        except Exception as exc:  # pragma: no cover
            errors.append(("advancer", exc))

    def churner(slot):
        try:
            crng = random.Random(2000 + slot)
            for _ in range(CHURN_ROUNDS):
                y1 = crng.uniform(0.0, Y_MAX * 0.8)
                sid = manager.subscribe_snapshot(y1, y1 + 80.0)
                manager.result(sid)
                note_delivered(len(manager.drain_deltas(sid)))
                note_delivered(len(manager.cancel(sid)))
        except Exception as exc:  # pragma: no cover
            errors.append(("churner", slot, exc))

    def reader():
        try:
            rrng = random.Random(3000)
            for _ in range(40):
                sid = rrng.choice(sorted(persistent))
                manager.result(sid)
                manager.stats()
                service.service_stats()
        except Exception as exc:  # pragma: no cover
            errors.append(("reader", exc))

    threads = (
        [threading.Thread(target=writer, args=(s,)) for s in range(WRITERS)]
        + [threading.Thread(target=advancer)]
        + [threading.Thread(target=churner, args=(s,)) for s in range(CHURNERS)]
        + [threading.Thread(target=reader)]
    )
    assert len(threads) == 8
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []

    # Quiesced: drain everything and check the three-way agreement.
    for sid, (kind, params) in persistent.items():
        drained = manager.drain_deltas(sid)
        note_delivered(len(drained))
        collected[sid].extend(drained)
        final = replay_deltas(initial[sid], collected[sid])
        result = set(manager.result(sid))
        assert final == result, (sid, kind)
        now = manager.now
        if kind == "snapshot":
            y1, y2 = params
            assert result == service.snapshot_at(y1, y2, now), sid
        elif kind == "within":
            y1, y2 = params
            sub = manager.subscription(sid)
            h = sub["params"]["horizon"]
            assert result == service.within(y1, y2, now, now + h), sid
        else:
            assert result == manager.reevaluate(sid), sid

    counters = manager.metrics.snapshot()["counters"]
    assert counters["subscription_anomalies"] == 0
    assert counters["subscription_deltas_emitted"] == delivered[0]
    manager.close()
