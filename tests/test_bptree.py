"""Unit and property tests for the disk-based B+-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bptree import BPlusTree
from repro.errors import ObjectNotFoundError
from repro.io_sim import DiskSimulator


def make_tree(leaf_capacity=4, internal_capacity=None, buffer_pages=4):
    disk = DiskSimulator(buffer_pages=buffer_pages)
    return BPlusTree(disk, leaf_capacity, internal_capacity), disk


class TestBasicOperations:
    def test_empty_tree(self):
        tree, _ = make_tree()
        assert len(tree) == 0
        assert tree.height == 1
        assert tree.range_search(-1e9, 1e9) == []
        tree.check_invariants()

    def test_insert_and_get(self):
        tree, _ = make_tree()
        tree.insert(5, "five")
        tree.insert(1, "one")
        tree.insert(9, "nine")
        assert tree.get(5) == "five"
        assert tree.get(1) == "one"
        assert tree.contains(9)
        assert not tree.contains(2)
        tree.check_invariants()

    def test_duplicate_key_rejected(self):
        tree, _ = make_tree()
        tree.insert(1, "a")
        with pytest.raises(ValueError):
            tree.insert(1, "b")

    def test_get_missing_key(self):
        tree, _ = make_tree()
        tree.insert(1, "a")
        with pytest.raises(ObjectNotFoundError):
            tree.get(2)

    def test_delete_returns_value(self):
        tree, _ = make_tree()
        tree.insert(1, "a")
        assert tree.delete(1) == "a"
        assert len(tree) == 0
        with pytest.raises(ObjectNotFoundError):
            tree.delete(1)

    def test_capacity_validation(self):
        disk = DiskSimulator()
        with pytest.raises(ValueError):
            BPlusTree(disk, leaf_capacity=1)
        with pytest.raises(ValueError):
            BPlusTree(disk, leaf_capacity=4, internal_capacity=1)

    def test_tuple_keys(self):
        tree, _ = make_tree()
        tree.insert((1.5, 3), "a")
        tree.insert((1.5, 1), "b")
        tree.insert((0.5, 9), "c")
        assert tree.range_search((1.0, -1), (2.0, 10**9)) == ["b", "a"]


class TestGrowth:
    def test_splits_increase_height(self):
        tree, _ = make_tree(leaf_capacity=4, internal_capacity=4)
        for i in range(100):
            tree.insert(i, i * 10)
        assert tree.height >= 3
        tree.check_invariants()
        for i in range(100):
            assert tree.get(i) == i * 10

    def test_reverse_and_shuffled_insertion_orders(self):
        for order in ("asc", "desc", "shuffled"):
            keys = list(range(200))
            if order == "desc":
                keys.reverse()
            elif order == "shuffled":
                random.Random(7).shuffle(keys)
            tree, _ = make_tree(leaf_capacity=4, internal_capacity=4)
            for k in keys:
                tree.insert(k, -k)
            tree.check_invariants()
            assert [k for k, _ in tree.items()] == sorted(keys)

    def test_range_search_matches_sorted_scan(self):
        tree, _ = make_tree(leaf_capacity=4, internal_capacity=4)
        rng = random.Random(42)
        keys = rng.sample(range(10000), 300)
        for k in keys:
            tree.insert(k, k)
        keys.sort()
        for _ in range(50):
            lo = rng.randint(-100, 10100)
            hi = lo + rng.randint(0, 4000)
            expected = [k for k in keys if lo <= k <= hi]
            assert tree.range_search(lo, hi) == expected


class TestShrinkage:
    def test_delete_everything(self):
        tree, disk = make_tree(leaf_capacity=4, internal_capacity=4)
        keys = list(range(150))
        for k in keys:
            tree.insert(k, k)
        random.Random(3).shuffle(keys)
        for i, k in enumerate(keys):
            assert tree.delete(k) == k
            if i % 10 == 0:
                tree.check_invariants()
        assert len(tree) == 0
        assert tree.height == 1
        tree.check_invariants()
        # All pages but the root leaf should have been freed.
        assert disk.pages_in_use == 1

    def test_interleaved_inserts_and_deletes(self):
        tree, _ = make_tree(leaf_capacity=4, internal_capacity=4)
        shadow = {}
        rng = random.Random(11)
        for step in range(1500):
            if shadow and rng.random() < 0.45:
                key = rng.choice(list(shadow))
                assert tree.delete(key) == shadow.pop(key)
            else:
                key = rng.randint(0, 500)
                if key in shadow:
                    continue
                shadow[key] = rng.random()
                tree.insert(key, shadow[key])
            if step % 100 == 0:
                tree.check_invariants()
        tree.check_invariants()
        assert len(tree) == len(shadow)
        assert dict(tree.items()) == shadow


class TestIOAccounting:
    def test_search_io_is_logarithmic(self):
        tree, disk = make_tree(leaf_capacity=16, internal_capacity=16)
        for i in range(5000):
            tree.insert(i, i)
        disk.clear_buffer()
        before = disk.stats.snapshot()
        tree.get(3456)
        delta = disk.stats.snapshot() - before
        # Height is ~log_16(5000/16)+1; a point lookup reads one path.
        assert delta.reads <= tree.height
        assert delta.writes == 0

    def test_range_search_io_scales_with_answer(self):
        tree, disk = make_tree(leaf_capacity=16, internal_capacity=16)
        for i in range(2000):
            tree.insert(i, i)
        disk.clear_buffer()
        before = disk.stats.snapshot()
        result = tree.range_search(500, 900)
        delta = disk.stats.snapshot() - before
        assert len(result) == 401
        # path + ceil(K/B) leaves, with slack for partial leaves
        assert delta.reads <= tree.height + 401 // 8 + 2

    def test_buffered_repeat_search_cheaper(self):
        tree, disk = make_tree(leaf_capacity=16, internal_capacity=16)
        for i in range(2000):
            tree.insert(i, i)
        disk.clear_buffer()
        tree.get(100)
        before = disk.stats.snapshot()
        tree.get(100)  # same path should now be buffered
        delta = disk.stats.snapshot() - before
        assert delta.reads == 0


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete"]),
            st.integers(min_value=0, max_value=60),
        ),
        max_size=220,
    )
)
def test_property_matches_dict_model(ops):
    """The tree behaves exactly like a sorted dict under random workloads."""
    tree, _ = make_tree(leaf_capacity=4, internal_capacity=4)
    shadow = {}
    for op, key in ops:
        if op == "insert":
            if key in shadow:
                with pytest.raises(ValueError):
                    tree.insert(key, key)
            else:
                shadow[key] = key
                tree.insert(key, key)
        else:
            if key in shadow:
                assert tree.delete(key) == shadow.pop(key)
            else:
                with pytest.raises(ObjectNotFoundError):
                    tree.delete(key)
    tree.check_invariants()
    assert dict(tree.items()) == shadow
    assert [k for k, _ in tree.items()] == sorted(shadow)


@settings(max_examples=25, deadline=None)
@given(
    keys=st.sets(st.integers(min_value=0, max_value=10**6), max_size=300),
    bounds=st.tuples(
        st.integers(min_value=-10, max_value=10**6),
        st.integers(min_value=-10, max_value=10**6),
    ),
)
def test_property_range_search(keys, bounds):
    tree, _ = make_tree(leaf_capacity=8, internal_capacity=8)
    for k in keys:
        tree.insert(k, k)
    lo, hi = min(bounds), max(bounds)
    assert tree.range_search(lo, hi) == sorted(k for k in keys if lo <= k <= hi)
