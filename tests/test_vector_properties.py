"""Property-based agreement: vectorized kernels vs scalar predicates.

Every kernel in :mod:`repro.vector.kernels` claims either bit-identity
with a scalar oracle (`mor_mask` / `snapshot_mask` / `wedge_mask`) or
exact agreement with the scalar dual machinery (`b_range_mask` /
`hough_y_exact_mask`).  Hypothesis sweeps random motions — including
``v = 0``, negative velocities and empty stores, which the columnar
paths must handle exactly like the scalar ones.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LinearMotion1D, MOR1Query, MORQuery1D
from repro.core.duality import (
    hough_x,
    hough_y,
    hough_y_b_range,
    hough_y_matches,
    mor_wedge,
)
from repro.core.predicates import matches_1d, matches_mor1
from repro.vector.columns import MotionColumns
from repro.vector.kernels import (
    b_range_mask,
    hough_x_points,
    hough_y_exact_mask,
    hough_y_points,
    knn_distances,
    knn_select,
    mor_mask,
    snapshot_mask,
    wedge_mask,
)

from .helpers import PAPER_MODEL

pytestmark = pytest.mark.batch

# -- strategies ---------------------------------------------------------------

#: Motions across the full velocity spectrum: fast positive, fast
#: negative, slow, and exactly zero.
any_motions = st.builds(
    LinearMotion1D,
    y0=st.floats(min_value=0, max_value=1000),
    v=st.one_of(
        st.floats(min_value=0.16, max_value=1.66),
        st.floats(min_value=-1.66, max_value=-0.16),
        st.floats(min_value=-0.16, max_value=0.16),
        st.just(0.0),
    ),
    t0=st.floats(min_value=0, max_value=100),
)

positive_motions = st.builds(
    LinearMotion1D,
    y0=st.floats(min_value=0, max_value=1000),
    v=st.floats(min_value=0.16, max_value=1.66),
    t0=st.floats(min_value=0, max_value=100),
)

queries = st.builds(
    lambda y1, dy, t1, dt: MORQuery1D(y1, y1 + dy, t1, t1 + dt),
    y1=st.floats(min_value=0, max_value=900),
    dy=st.floats(min_value=0, max_value=150),
    t1=st.floats(min_value=0, max_value=150),
    dt=st.floats(min_value=0, max_value=60),
)


def columns_of(motions):
    return MotionColumns.from_motions(
        {oid: motion for oid, motion in enumerate(motions)}
    )


# -- primal kernels: bit-identical to the scalar predicates -------------------


@settings(max_examples=200, deadline=None)
@given(ms=st.lists(any_motions, max_size=30), query=queries)
def test_mor_mask_matches_scalar_predicate(ms, query):
    _, y0, v, t0 = columns_of(ms).arrays()
    mask = mor_mask(y0, v, t0, query)
    expected = [matches_1d(m, query) for m in ms]
    assert mask.tolist() == expected


@settings(max_examples=200, deadline=None)
@given(
    ms=st.lists(any_motions, max_size=30),
    y1=st.floats(min_value=0, max_value=900),
    dy=st.floats(min_value=0, max_value=150),
    t=st.floats(min_value=0, max_value=200),
)
def test_snapshot_mask_matches_scalar_predicate(ms, y1, dy, t):
    _, y0, v, t0 = columns_of(ms).arrays()
    mask = snapshot_mask(y0, v, t0, y1, y1 + dy, t)
    expected = [matches_mor1(m, MOR1Query(y1, y1 + dy, t)) for m in ms]
    assert mask.tolist() == expected


# -- Hough-X: the Proposition 1 wedge -----------------------------------------


@settings(max_examples=200, deadline=None)
@given(
    ms=st.lists(any_motions, max_size=30),
    query=queries,
    sign=st.sampled_from([1, -1]),
    t_ref=st.floats(min_value=0, max_value=100),
)
def test_wedge_mask_matches_scalar_region(ms, query, sign, t_ref):
    region = mor_wedge(query, PAPER_MODEL, sign, t_ref=t_ref)
    _, y0, v_col, t0 = columns_of(ms).arrays()
    v, a = hough_x_points(y0, v_col, t0, t_ref)
    mask = wedge_mask(v, a, region)
    expected = [region.contains(*hough_x(m, t_ref)) for m in ms]
    assert mask.tolist() == expected


@settings(max_examples=100, deadline=None)
@given(ms=st.lists(positive_motions, max_size=30), query=queries)
def test_wedge_membership_equals_primal_for_fast_positive(ms, query):
    """Proposition 1, both directions: for motions inside the model's
    positive speed band the wedge answers exactly the MOR predicate."""
    region = mor_wedge(query, PAPER_MODEL, sign=1, t_ref=0.0)
    for m in ms:
        in_wedge = region.contains(*hough_x(m, 0.0))
        in_primal = matches_1d(m, query)
        if in_wedge != in_primal:
            # The wedge carries epsilon slack for boundary objects;
            # only hair's-breadth disagreements are tolerable.
            y_start = m.position(query.t1)
            y_end = m.position(query.t2)
            lo, hi = min(y_start, y_end), max(y_start, y_end)
            margin = min(abs(lo - query.y2), abs(hi - query.y1))
            assert margin < 1e-6


# -- Hough-Y: b-range prefilter and exact dual filter -------------------------


@settings(max_examples=200, deadline=None)
@given(ms=st.lists(any_motions, max_size=30), query=queries)
def test_b_range_mask_matches_scalar_range(ms, query):
    y_r = 0.0
    b_lo, b_hi = hough_y_b_range(
        query, y_r, PAPER_MODEL.v_min, PAPER_MODEL.v_max
    )
    _, y0, v, t0 = columns_of(ms).arrays()
    mask = b_range_mask(
        y0, v, t0, query, y_r, PAPER_MODEL.v_min, PAPER_MODEL.v_max
    )
    for m, got in zip(ms, mask.tolist()):
        if m.v <= 0:
            assert got is False  # no Hough-Y image / wrong population
        else:
            _, b = hough_y(m, y_r)
            assert got == (b_lo <= b <= b_hi)


@settings(max_examples=200, deadline=None)
@given(ms=st.lists(positive_motions, max_size=30), query=queries)
def test_hough_y_exact_mask_matches_scalar(ms, query):
    y_r = 0.0
    _, y0, v, t0 = columns_of(ms).arrays()
    n, b = hough_y_points(y0, v, t0, y_r)
    mask = hough_y_exact_mask(n, b, query, y_r)
    expected = [hough_y_matches(*hough_y(m, y_r), query, y_r) for m in ms]
    assert mask.tolist() == expected


@settings(max_examples=100, deadline=None)
@given(ms=st.lists(positive_motions, max_size=30), query=queries)
def test_b_range_prefilter_is_superset_of_exact(ms, query):
    """§3.5.2: the rectangle never loses a true positive-velocity
    answer — false positives only."""
    y_r = 0.0
    _, y0, v, t0 = columns_of(ms).arrays()
    prefilter = b_range_mask(
        y0, v, t0, query, y_r, PAPER_MODEL.v_min, PAPER_MODEL.v_max
    )
    exact = mor_mask(y0, v, t0, query)
    assert not np.any(exact & ~prefilter)


# -- k-NN ---------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    ms=st.lists(any_motions, max_size=25),
    y=st.floats(min_value=0, max_value=1000),
    t=st.floats(min_value=0, max_value=200),
    k=st.integers(min_value=1, max_value=30),
)
def test_knn_select_matches_scalar_ranking(ms, y, t, k):
    oid, y0, v, t0 = columns_of(ms).arrays()
    got = knn_select(oid, knn_distances(y0, v, t0, y, t), k)
    ranked = sorted(
        ((abs(m.position(t) - y), i) for i, m in enumerate(ms))
    )
    expected = [(i, d) for d, i in ranked[:k]]
    assert got == expected


# -- empty stores -------------------------------------------------------------


def test_all_kernels_on_empty_store():
    columns = MotionColumns()
    oid, y0, v, t0 = columns.arrays()
    query = MORQuery1D(10.0, 20.0, 1.0, 5.0)
    assert mor_mask(y0, v, t0, query).tolist() == []
    assert snapshot_mask(y0, v, t0, 10.0, 20.0, 1.0).tolist() == []
    assert b_range_mask(y0, v, t0, query, 0.0, 0.16, 1.66).tolist() == []
    n, b = hough_y_points(y0, v, t0, 0.0)
    assert hough_y_exact_mask(n, b, query, 0.0).tolist() == []
    region = mor_wedge(query, PAPER_MODEL, sign=1)
    pv, pa = hough_x_points(y0, v, t0, 0.0)
    assert wedge_mask(pv, pa, region).tolist() == []
    assert knn_select(oid, knn_distances(y0, v, t0, 5.0, 1.0), 3) == []
