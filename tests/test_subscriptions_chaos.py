"""Chaos: shard crashes mid-subscription, WAL recovery, reconciliation.

Extends the ``test_failure_injection`` pattern to standing queries.
The invariant under test: the subscription layer listens to
*acknowledged* writes only, and recovery (checkpoint + WAL replay +
catalog reconciliation) never changes acknowledged state — so after a
crash and recovery the incremental result sets, the replayed delta
streams, and the naive one-shot oracle must still agree exactly.
"""

import random

import pytest

from repro.errors import InvalidMotionError, ObjectNotFoundError, ShardUnavailableError
from repro.service import (
    FaultInjector,
    FaultSpec,
    FaultTolerantMotionService,
    PartialResult,
    SubscriptionManager,
    replay_deltas,
)

pytestmark = [pytest.mark.subscription, pytest.mark.chaos]

Y_MAX, V_MIN, V_MAX = 1000.0, 0.16, 1.66
N_OBJECTS = 60
TICKS = 8
UPDATES_PER_TICK = 15


def random_motion(rng, now):
    speed = rng.uniform(V_MIN, V_MAX)
    return (
        rng.uniform(0.0, Y_MAX),
        speed if rng.random() < 0.5 else -speed,
        now + rng.uniform(0.0, 0.5),
    )


def build_subscriptions(manager, rng):
    subs = {}
    for i in range(8):
        y1 = rng.uniform(0.0, Y_MAX * 0.8)
        y2 = y1 + rng.uniform(0.05, 0.2) * Y_MAX
        if i % 2 == 0:
            subs[manager.subscribe_snapshot(y1, y2)] = ("snapshot", (y1, y2))
        else:
            h = rng.uniform(2.0, 8.0)
            subs[manager.subscribe_within(y1, y2, h)] = ("within", (y1, y2, h))
    subs[manager.subscribe_proximity(rng.uniform(4.0, 12.0))] = (
        "proximity", None
    )
    return subs


def check_against_oracle(manager, subs, replayed, now):
    """Three-way agreement, all shards up: naive == result == replay."""
    for sid, (kind, params) in subs.items():
        replayed[sid] = replay_deltas(
            replayed[sid], manager.drain_deltas(sid)
        )
        naive = manager.reevaluate(sid)
        assert not isinstance(naive, PartialResult), sid
        result = manager.result(sid)
        assert result == naive, (sid, kind, params, now)
        assert replayed[sid] == naive, (sid, kind, params, now)


def test_injected_crash_then_wal_recovery_reconciles_with_oracle():
    """r=2: the injector crashes a shard mid-run; surviving replicas
    keep acknowledging writes; after ``recover_shard`` the delta
    streams reconcile exactly with the oracle."""
    victim = 1
    injector = FaultInjector(
        seed=5, per_shard={victim: FaultSpec(crash_on_op=50)}
    )
    service = FaultTolerantMotionService(
        Y_MAX, V_MIN, V_MAX, shards=3, replication_factor=2,
        fault_injector=injector, checkpoint_every=16,
    )
    rng = random.Random(31)
    for oid in range(N_OBJECTS):
        y0, v, _ = random_motion(rng, 0.0)
        service.register(oid, y0, v, 0.0)
    assert service.down_shards() == []  # crash comes mid-subscription

    manager = SubscriptionManager(service)
    subs = build_subscriptions(manager, rng)
    replayed = {sid: set(manager.result(sid)) for sid in subs}

    crash_seen = False
    recovered = False
    now = 0.0
    for _ in range(TICKS):
        now += 1.0
        for _ in range(UPDATES_PER_TICK):
            oid = rng.randrange(N_OBJECTS)
            y0, v, t0 = random_motion(rng, now)
            # Write-all-live with r=2: every write still acknowledges
            # while one shard of the group is down.
            service.report(oid, y0, v, t0)
        manager.advance(now)
        if service.down_shards():
            crash_seen = True
            # Degraded, not raising: every subscription flags stale.
            assert all(manager.is_stale(sid) for sid in subs)
            # The incremental stream keeps flowing while degraded.
            for sid in subs:
                replayed[sid] = replay_deltas(
                    replayed[sid], manager.drain_deltas(sid)
                )
                assert manager.result(sid) == replayed[sid]
            for shard in service.down_shards():
                report = service.recover_shard(shard)
                assert report["shard"] == shard
            recovered = True
            manager.advance(now)  # re-probe health: stale clears
            assert not any(manager.is_stale(sid) for sid in subs)
        check_against_oracle(manager, subs, replayed, now)
    assert crash_seen and recovered, "the fault plan never fired"
    counters = manager.metrics.snapshot()["counters"]
    assert counters["subscription_anomalies"] == 0
    manager.close()


def test_unreplicated_crash_degrades_then_reconciles():
    """r=1: writes to the dead shard are rejected (not acknowledged),
    so the subscription layer must track exactly the acknowledged
    subset — and still match the oracle after recovery."""
    service = FaultTolerantMotionService(
        Y_MAX, V_MIN, V_MAX, shards=3, replication_factor=1,
        checkpoint_every=16,
    )
    rng = random.Random(77)
    for oid in range(N_OBJECTS):
        y0, v, _ = random_motion(rng, 0.0)
        service.register(oid, y0, v, 0.0)

    manager = SubscriptionManager(service)
    subs = build_subscriptions(manager, rng)
    replayed = {sid: set(manager.result(sid)) for sid in subs}

    victim = 2
    rejected = 0
    now = 0.0
    for tick in range(TICKS):
        now += 1.0
        if tick == 2:
            service.kill_shard(victim)
        for _ in range(UPDATES_PER_TICK):
            oid = rng.randrange(N_OBJECTS)
            y0, v, t0 = random_motion(rng, now)
            try:
                service.report(oid, y0, v, t0)
            except ShardUnavailableError:
                rejected += 1
        manager.advance(now)
        degraded = bool(service.down_shards())
        assert all(manager.is_stale(sid) == degraded for sid in subs)
        if tick == 5:
            service.recover_shard(victim)
            manager.advance(now)
            degraded = False
        for sid in subs:
            replayed[sid] = replay_deltas(
                replayed[sid], manager.drain_deltas(sid)
            )
            assert manager.result(sid) == replayed[sid]
        if not degraded:
            check_against_oracle(manager, subs, replayed, now)
    assert rejected > 0, "the dead shard never rejected a write"
    counters = manager.metrics.snapshot()["counters"]
    assert counters["subscription_anomalies"] == 0
    manager.close()


def test_rejected_operations_leave_subscriptions_untouched():
    """The atomic-failure contract lifted to standing queries: a
    rejected write emits no delta and changes no result set."""
    service = FaultTolerantMotionService(
        Y_MAX, V_MIN, V_MAX, shards=3, replication_factor=2
    )
    rng = random.Random(13)
    for oid in range(20):
        y0, v, _ = random_motion(rng, 0.0)
        service.register(oid, y0, v, 0.0)
    manager = SubscriptionManager(service)
    subs = build_subscriptions(manager, rng)
    manager.advance(3.0)
    for sid in subs:
        manager.drain_deltas(sid)
    before = {sid: manager.result(sid) for sid in subs}

    with pytest.raises(InvalidMotionError):
        service.register(0, 400.0, 1.0, 3.0)  # duplicate
    with pytest.raises(InvalidMotionError):
        service.register(999, 400.0, 99.0, 3.0)  # over-speed
    with pytest.raises(ObjectNotFoundError):
        service.report(424242, 100.0, 1.0, 5.0)  # unknown
    with pytest.raises(ObjectNotFoundError):
        service.deregister(424242)

    for sid in subs:
        assert manager.result(sid) == before[sid]
        assert manager.drain_deltas(sid) == []


@pytest.mark.durability
def test_crash_mid_delivery_then_cold_restart_converges(tmp_path):
    """Shard dies mid-subscription-delivery; the whole service is then
    shut down *without recovering it* and rebuilt from disk.

    ``restore_from_disk`` elects the newest motion per object across
    replica WALs — the dead shard's log is stale, the survivor's is
    not — so the restored catalog must equal the acknowledged pre-
    shutdown catalog exactly, and a fresh subscription layer over the
    restored service must agree with its own naive oracle from the
    first advance.
    """
    from repro.core.predicates import matches_mor1
    from repro.core.queries import MOR1Query

    def build():
        return FaultTolerantMotionService(
            Y_MAX, V_MIN, V_MAX, shards=3, replication_factor=2,
            checkpoint_every=8, wal_dir=str(tmp_path), wal_fsync="batch:4",
        )

    service = build()
    rng = random.Random(91)
    for oid in range(N_OBJECTS):
        y0, v, _ = random_motion(rng, 0.0)
        service.register(oid, y0, v, 0.0)

    manager = SubscriptionManager(service)
    subs = build_subscriptions(manager, rng)
    replayed = {sid: set(manager.result(sid)) for sid in subs}

    victim = 1
    now = 0.0
    for tick in range(6):
        now += 1.0
        for i in range(UPDATES_PER_TICK):
            if tick == 2 and i == UPDATES_PER_TICK // 2:
                # Mid-update-storm — which is mid-delivery: the
                # listeners feeding the manager run inside the write
                # path, so deltas are streaming as the shard dies.
                service.kill_shard(victim, reason="chaos mid-delivery")
            oid = rng.randrange(N_OBJECTS)
            y0, v, t0 = random_motion(rng, now)
            service.report(oid, y0, v, t0)  # r=2: always acknowledges
        manager.advance(now)
        for sid in subs:
            replayed[sid] = replay_deltas(
                replayed[sid], manager.drain_deltas(sid)
            )
            # The incremental stream stays exact while degraded.
            assert manager.result(sid) == replayed[sid]
    assert service.down_shards() == [victim]

    # Graceful shutdown with the victim still dead: its on-disk WAL is
    # a stale fork of history.
    acknowledged = service.motion_snapshot()
    manager.close()
    service.close()

    restored_service = build()
    report = restored_service.restore_from_disk()
    assert report["objects"] == len(acknowledged)
    restored = restored_service.motion_snapshot()
    assert restored.keys() == acknowledged.keys()
    for oid, motion in acknowledged.items():
        got = restored[oid]
        assert (got.y0, got.v, got.t0) == (motion.y0, motion.v, motion.t0), oid
    assert restored_service.down_shards() == []

    # A fresh subscription layer over the restored service reconciles
    # with its own naive oracle immediately.
    restored_manager = SubscriptionManager(restored_service)
    now += 1.0  # past the newest restored t0: clocks never run backwards
    restored_manager.advance(now)
    new_subs = build_subscriptions(restored_manager, random.Random(91 + 1))
    new_replayed = {
        sid: set(restored_manager.result(sid)) for sid in new_subs
    }
    for tick in range(3):
        now += 1.0
        for _ in range(UPDATES_PER_TICK):
            oid = rng.randrange(N_OBJECTS)
            y0, v, t0 = random_motion(rng, now)
            restored_service.report(oid, y0, v, t0)
        restored_manager.advance(now)
        check_against_oracle(restored_manager, new_subs, new_replayed, now)
    # And the restored catalog answers queries exactly like brute force.
    snapshot = restored_service.motion_snapshot()
    for _ in range(10):
        y1 = rng.uniform(0.0, Y_MAX * 0.8)
        y2 = y1 + rng.uniform(0.05, 0.2) * Y_MAX
        expected = {
            oid for oid, motion in snapshot.items()
            if matches_mor1(motion, MOR1Query(y1, y2, now))
        }
        assert set(restored_service.snapshot_at(y1, y2, now)) == expected
    counters = restored_manager.metrics.snapshot()["counters"]
    assert counters.get("subscription_anomalies", 0) == 0
    restored_manager.close()
    restored_service.close()
