"""The crash-at-every-boundary durability matrix (tentpole of ISSUE 6).

Every crash point the storage layer exposes × every fsync policy ×
page-cache survival or loss: after the injected death, a fresh
:class:`ShardWAL` over the same directory must recover a database
byte-identical (``assert_equivalent``) to a never-crashed oracle that
executed exactly the *expected committed prefix* — computed from first
principles per policy:

* ``drop_unsynced=True`` (power cut, page cache lost): the prefix is
  the durability floor — everything covered by the last ``fsync``;
* ``drop_unsynced=False`` (process death, page cache survives): the
  prefix is every fully-flushed record — acknowledged appends, plus
  the in-flight one when the crash landed after its write.

Plus the satellites: history-preserving checkpoints (the fixed
``keep_history`` limitation), the soft-degrade path for pre-history
checkpoints, whole-service :meth:`restore_from_disk`, and the durable
serve-bench configuration.
"""

import random
import warnings

import pytest

from repro.engine import MotionDatabase
from repro.errors import DegradedResultWarning, SimulatedCrashError
from repro.service import ServeBenchConfig, ShardWAL, run_serve_bench
from repro.service.faults import CrashPointInjector
from repro.service.replication import FaultTolerantMotionService
from repro.storage import ALL_CRASH_POINTS, CheckpointStore, FileWALBackend
from repro.workloads.serialization import population_to_json

from tests.test_wal_recovery import (
    V_MAX,
    V_MIN,
    Y_MAX,
    assert_equivalent,
    factory,
    seeded_trace,
)

pytestmark = pytest.mark.durability

POLICIES = ("always", "batch:3", "never")
CHECKPOINT_EVERY = 8
EVENTS = 60


def history_factory() -> MotionDatabase:
    return MotionDatabase(Y_MAX, V_MIN, V_MAX, method="forest",
                          keep_history=True)


def drive_until_crash(directory, policy, injector, trace, hooks=None):
    """Apply ``trace`` through a durable ShardWAL until the armed crash
    fires; returns ``(acked, floor, crashed)``.

    ``acked`` counts appends that returned; ``floor`` counts events
    covered by the last ``fsync`` (the durable prefix under page-cache
    loss).  The ``attempt``/``floor`` bookkeeping relies on the append
    protocol: an fsync observed mid-append covers the in-flight
    record, an fsync observed during a checkpoint covers exactly the
    acknowledged prefix.
    """
    state = {"acked": 0, "attempt": 0, "floor": 0}

    def on_event(name, delta):
        if name == "fsync":
            state["floor"] = state["attempt"]

    backend = FileWALBackend(
        str(directory), fsync=policy, crash_hook=injector,
        on_event=on_event,
    )
    wal = ShardWAL(checkpoint_every=CHECKPOINT_EVERY, backend=backend)
    live = factory()
    crashed = False
    for i, event in enumerate(trace, start=1):
        live.apply_event(event)
        state["attempt"] = i
        try:
            wal.append(**event)
            state["acked"] = i
            wal.maybe_checkpoint(live)
        except SimulatedCrashError:
            crashed = True
            break
    if not crashed:
        wal.close()
    return state["acked"], state["floor"], crashed


def recover_from(directory, policy):
    backend = FileWALBackend(str(directory), fsync=policy)
    wal = ShardWAL(checkpoint_every=CHECKPOINT_EVERY, backend=backend)
    recovered = wal.recover(factory)
    wal.close()
    return recovered


def oracle_for(trace, prefix):
    oracle = factory()
    for event in trace[:prefix]:
        oracle.apply_event(event)
    return oracle


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("point", ALL_CRASH_POINTS)
@pytest.mark.parametrize("drop_unsynced", [False, True])
def test_crash_matrix_recovers_expected_prefix(
    tmp_path, policy, point, drop_unsynced
):
    trace = seeded_trace(17, events=EVENTS)
    at = 2 if point.startswith("checkpoint.") else 20
    injector = CrashPointInjector().arm(
        point, at=at, drop_unsynced=drop_unsynced
    )
    acked, floor, crashed = drive_until_crash(
        tmp_path, policy, injector, trace
    )
    if not crashed:
        # e.g. log.post_fsync under fsync=never: the boundary is
        # never reached, so this cell of the matrix is vacuous.
        assert injector.fired == []
        pytest.skip(f"{point} unreachable under fsync={policy}")
    if drop_unsynced:
        expected = floor
    elif point == "log.mid_record":
        expected = acked  # in-flight frame is torn
    elif point in ("log.pre_fsync", "log.post_fsync"):
        expected = acked + 1  # frame fully flushed before the crash
    else:
        expected = acked  # crash inside the checkpoint protocol
    # No committed (fsync-covered) record may ever be lost.
    assert expected >= floor
    recovered = recover_from(tmp_path, policy)
    assert_equivalent(recovered, oracle_for(trace, expected))


@pytest.mark.parametrize("policy", POLICIES)
def test_graceful_shutdown_loses_nothing(tmp_path, policy):
    """close() is a commit barrier: every acked record must survive."""
    trace = seeded_trace(23, events=EVENTS)
    acked, floor, crashed = drive_until_crash(
        tmp_path, policy, None, trace
    )
    assert not crashed and acked == EVENTS
    assert_equivalent(recover_from(tmp_path, policy),
                      oracle_for(trace, EVENTS))


def test_double_crash_during_recovery_checkpoint(tmp_path):
    """Crash mid-run, then crash again during the *next* incarnation's
    checkpoint: recovery must still land on a consistent prefix."""
    trace = seeded_trace(29, events=EVENTS)
    first = CrashPointInjector().arm("log.mid_record", at=30)
    acked, _, crashed = drive_until_crash(tmp_path, "always", first, trace)
    assert crashed
    second = CrashPointInjector().arm("checkpoint.pre_fsync")
    backend = FileWALBackend(str(tmp_path), fsync="always",
                             crash_hook=second)
    wal = ShardWAL(checkpoint_every=CHECKPOINT_EVERY, backend=backend)
    db = wal.recover(factory)
    with pytest.raises(SimulatedCrashError):
        wal.checkpoint(db)
    assert_equivalent(recover_from(tmp_path, "always"),
                      oracle_for(trace, acked))


# -- history preservation (the fixed keep_history limitation) --------------------


def history_trace():
    """Registrations + updates whose serialization order is *not*
    timestamp order — the case that used to break history recovery."""
    rng = random.Random(5)
    events = []
    now = 0.0
    for oid in range(8):
        now += 0.5
        events.append({"kind": "insert", "oid": oid,
                       "y0": rng.uniform(0, Y_MAX),
                       "v": rng.uniform(V_MIN, V_MAX), "t0": now})
    for _ in range(20):
        now += 0.7
        events.append({"kind": "update", "oid": rng.randrange(8),
                       "y0": rng.uniform(0, Y_MAX),
                       "v": -rng.uniform(V_MIN, V_MAX), "t0": now})
    return events


def assert_history_equivalent(recovered, oracle):
    assert population_to_json(recovered.objects()) == population_to_json(
        oracle.objects()
    )
    now = oracle.now
    for y1, y2, t1, t2 in (
        (0.0, Y_MAX, 0.0, now),
        (100.0, 600.0, 2.0, now / 2),
        (0.0, Y_MAX / 4, now / 3, now),
    ):
        assert recovered.query_past(y1, y2, t1, t2) == oracle.query_past(
            y1, y2, t1, t2
        )


@pytest.mark.parametrize("durable", [False, True])
def test_history_survives_checkpointed_recovery(tmp_path, durable):
    """The §7 archive rides inside the checkpoint payload, so past
    queries answer identically after recovery — through checkpoints,
    with the in-memory and the on-disk backend alike."""
    backend = FileWALBackend(str(tmp_path)) if durable else None
    wal = ShardWAL(checkpoint_every=6, backend=backend)
    live = history_factory()
    oracle = history_factory()
    for event in history_trace():
        live.apply_event(event)
        oracle.apply_event(event)
        wal.append(**event)
        wal.maybe_checkpoint(live)
    assert wal.snapshot()["checkpoints"] >= 2
    recovered = wal.recover(history_factory)
    assert_history_equivalent(recovered, oracle)
    if durable:
        wal.close()
        # Full cold restart: a fresh WAL over the same directory.
        cold_backend = FileWALBackend(str(tmp_path))
        cold = ShardWAL(checkpoint_every=6, backend=cold_backend)
        assert_history_equivalent(cold.recover(history_factory), oracle)
        cold.close()


def test_registration_order_restore_does_not_trip_time_check():
    """Checkpoint populations serialize in registration order; after
    updates that order is not timestamp order, which used to raise
    InvalidQueryError("history must be written in time order")."""
    wal = ShardWAL(checkpoint_every=100)
    live = history_factory()
    live.apply_event({"kind": "insert", "oid": 0, "y0": 1.0, "v": 0.5,
                      "t0": 0.0})
    wal.append(kind="insert", oid=0, y0=1.0, v=0.5, t0=0.0)
    live.apply_event({"kind": "insert", "oid": 1, "y0": 2.0, "v": 0.5,
                      "t0": 1.0})
    wal.append(kind="insert", oid=1, y0=2.0, v=0.5, t0=1.0)
    # oid 0 now carries t0=5.0 but still serializes first.
    live.apply_event({"kind": "update", "oid": 0, "y0": 9.0, "v": -0.5,
                      "t0": 5.0})
    wal.append(kind="update", oid=0, y0=9.0, v=-0.5, t0=5.0)
    wal.checkpoint(live)
    recovered = wal.recover(history_factory)
    assert_history_equivalent(recovered, live)
    assert recovered.now == 5.0


def test_pre_history_checkpoint_degrades_softly(tmp_path):
    """An old-format checkpoint (no ``history`` payload) must recover
    current state, warn, and count the loss — never crash."""
    live = history_factory()
    live.apply_event({"kind": "insert", "oid": 0, "y0": 1.0, "v": 0.5,
                      "t0": 0.0})
    live.apply_event({"kind": "update", "oid": 0, "y0": 4.0, "v": 0.5,
                      "t0": 2.0})
    store = CheckpointStore(str(tmp_path))
    store.write({
        "seq": 2,
        "now": live.now,
        "population": population_to_json(live.objects()),
        # no "history" key: the pre-ISSUE-6 checkpoint format
    })
    events = []
    backend = FileWALBackend(str(tmp_path))
    wal = ShardWAL(backend=backend,
                   on_event=lambda n, a: events.append((n, a)))
    with pytest.warns(DegradedResultWarning):
        recovered = wal.recover(history_factory)
    wal.close()
    assert ("wal_history_loss", 1) in events
    # Current state intact; only the pre-checkpoint archive is gone.
    assert population_to_json(recovered.objects()) == population_to_json(
        live.objects()
    )


# -- whole-service cold restart --------------------------------------------------


def build_durable_service(wal_dir, **kwargs):
    params = dict(shards=3, replication_factor=2, wal_dir=str(wal_dir),
                  wal_fsync="always", checkpoint_every=16)
    params.update(kwargs)
    return FaultTolerantMotionService(Y_MAX, V_MIN, V_MAX, **params)


def test_restore_from_disk_reproduces_the_service(tmp_path):
    rng = random.Random(11)
    service = build_durable_service(tmp_path)
    for oid in range(60):
        service.register(oid, rng.uniform(0, Y_MAX),
                         rng.uniform(V_MIN, V_MAX), float(oid))
    for seq in range(60, 160):
        service.report(rng.randrange(60), rng.uniform(0, Y_MAX),
                       -rng.uniform(V_MIN, V_MAX), float(seq))
    now = service.now
    queries = [
        ("within", (100.0, 400.0, now, now + 10.0)),
        ("snapshot_at", (0.0, Y_MAX / 2, now + 1.0)),
        ("nearest", (Y_MAX / 3, now + 2.0, 5)),
    ]
    before = {
        name: getattr(service, name)(*args) for name, args in queries
    }
    population = service.motion_snapshot()
    service.close()

    restored = build_durable_service(tmp_path)
    summary = restored.restore_from_disk()
    assert summary["objects"] == 60
    assert summary["dropped"] == 0 and summary["reconciled"] == 0
    assert restored.motion_snapshot() == population
    for name, args in queries:
        assert getattr(restored, name)(*args) == before[name]
    # The restored service keeps serving writes.
    restored.report(0, 123.0, 1.0, now + 100.0)
    assert restored.location_of(0, now + 100.0) == 123.0
    restored.close()


def test_restore_from_disk_requires_fresh_service(tmp_path):
    service = build_durable_service(tmp_path)
    service.register(1, 10.0, 1.0, 0.0)
    with pytest.raises(ValueError, match="fresh service"):
        service.restore_from_disk()
    service.close()


def test_restore_from_disk_on_empty_directory_is_a_noop(tmp_path):
    service = build_durable_service(tmp_path)
    summary = service.restore_from_disk()
    assert summary["objects"] == 0
    service.register(1, 10.0, 1.0, 0.0)
    assert len(service) == 1
    service.close()


# -- durable serve-bench ---------------------------------------------------------


@pytest.mark.parametrize("fsync", ["always", "batch:4"])
def test_serve_bench_durable_chaos_run_verifies(tmp_path, fsync):
    """The ``--wal-dir --faults --verify`` path: chaos over the real
    backend must still lose zero acknowledged updates."""
    report = run_serve_bench(ServeBenchConfig(
        n=150, shards=3, batches=3, updates_per_batch=30,
        queries_per_batch=10, proximity_every=0, seed=9,
        faults=True, verify=True,
        wal_dir=str(tmp_path), fsync=fsync,
    ))
    assert report.verification is not None
    assert report.verification["mismatches"] == 0
    assert report.verification["lost_objects"] == 0
    ft = report.stats["fault_tolerance"]
    assert ft["wal_dir"] == str(tmp_path)
    backends = [s["wal"]["backend"] for s in ft["health"]]
    assert all(b["kind"] == "file" for b in backends)
    assert all(b["fsync"] == fsync for b in backends)
    counters = report.stats["metrics"]["counters"]
    assert counters.get("wal_append", 0) > 0
    assert counters.get("wal_fsync", 0) > 0


def test_serve_bench_wal_dir_without_faults_uses_durable_service(tmp_path):
    report = run_serve_bench(ServeBenchConfig(
        n=50, shards=2, batches=1, updates_per_batch=10,
        queries_per_batch=5, proximity_every=0, seed=3,
        wal_dir=str(tmp_path),
    ))
    assert "fault_tolerance" in report.stats
    assert (tmp_path / "shard-00" / "MANIFEST").exists()
