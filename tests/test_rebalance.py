"""Live shard rebalancing: router, planner, and two-phase migration.

The functional half of the rebalancing acceptance criteria (the chaos
half lives in ``test_rebalance_chaos.py``):

* :class:`BandRouter` validates cuts and gates replacements on a
  strictly newer band epoch; :class:`OwnershipTable` fences every
  migration step on its epoch;
* the controller's equi-depth plan flattens an adversarially skewed
  population and its dual-space cost model agrees the new cut is
  cheaper;
* during the double-write window queries merge over the two-shard
  ownership set and dedup by oid — no duplicates, no gaps — and a
  speed-crossing report never forks ownership (the stale-routing
  regression);
* a full controller pass improves spread at least 2x, under the plain
  service, under replication, and mid-soak against every oracle.
"""

import random

import pytest

from repro.engine import MotionDatabase
from repro.errors import ObjectNotFoundError, StaleMigrationError
from repro.service import (
    BandRouter,
    FaultTolerantMotionService,
    OwnershipTable,
    RebalanceConfig,
    RebalanceController,
    RetryPolicy,
)
from repro.service.service import ShardedMotionService
from repro.soak.harness import SoakConfig, run_soak
from repro.vector.ops import Nearest, ProximityPairs, SnapshotAt, Within

Y_MAX, V_MIN, V_MAX = 1000.0, 0.16, 1.66

pytestmark = pytest.mark.rebalance


def make_service(shards=4, **kwargs) -> ShardedMotionService:
    return ShardedMotionService(
        Y_MAX, V_MIN, V_MAX, shards=shards, router="velocity", **kwargs
    )


def skewed_motion(rng: random.Random):
    """80% of draws in the slowest tenth of the speed range."""
    if rng.random() < 0.8:
        v = V_MIN + rng.random() * 0.1 * (V_MAX - V_MIN)
    else:
        v = rng.uniform(V_MIN, V_MAX)
    return rng.uniform(0.0, Y_MAX), v * rng.choice((-1.0, 1.0)), 0.0


def populate_skewed(service, n, seed, oracle=None):
    rng = random.Random(seed)
    for oid in range(n):
        y0, v, t0 = skewed_motion(rng)
        service.register(oid, y0, v, t0)
        if oracle is not None:
            oracle.register(oid, y0, v, t0)


# -- router and ownership-table units --------------------------------------------


def test_velocity_router_default_cut_is_even():
    service = make_service(shards=4)
    assert service.router.band_edges() == tuple(
        V_MAX * i / 4 for i in range(1, 4)
    )
    assert service.router.epoch == 0
    # |v| routes: direction never matters to placement.
    assert service.router.band_of(-V_MIN) == service.router.band_of(V_MIN)
    assert service.router.band_of(V_MAX * 10) == 3  # clamped, still routes


def test_band_router_validates_cuts_and_epochs():
    router = BandRouter(3, V_MAX)
    with pytest.raises(ValueError):
        router.set_bands((0.5,), epoch=1)  # wrong edge count
    with pytest.raises(ValueError):
        router.set_bands((0.9, 0.4), epoch=1)  # not increasing
    with pytest.raises(ValueError):
        router.set_bands((0.4, V_MAX + 1.0), epoch=1)  # out of range
    router.set_bands((0.4, 0.9), epoch=3)
    assert router.band_edges() == (0.4, 0.9)
    with pytest.raises(StaleMigrationError):
        router.set_bands((0.3, 0.8), epoch=3)  # not strictly newer
    # A rejected cut leaves the previous layout fully intact.
    assert router.band_edges() == (0.4, 0.9)
    assert router.epoch == 3


def test_ownership_table_fences_every_step():
    table = OwnershipTable()
    table.owner[7] = 0
    state = table.begin_migration(7, source=0, dest=2)
    assert table.owners_of(7) == (0, 2)
    assert table.admits(7, state.epoch)
    with pytest.raises(StaleMigrationError):
        table.begin_migration(7, source=0, dest=1)  # already migrating
    table.commit_migration(state)
    assert table.owners_of(7) == (2,)
    assert not table.admits(7, state.epoch)
    with pytest.raises(StaleMigrationError):
        table.commit_migration(state)  # fenced: the token is spent
    with pytest.raises(ObjectNotFoundError):
        table.owners_of(99)


# -- planning ---------------------------------------------------------------------


def test_equi_depth_plan_flattens_skew_and_lowers_cost():
    service = make_service(shards=4)
    populate_skewed(service, 400, seed=1)
    controller = RebalanceController(service)
    assert controller.skew() > 2.0  # the even cut piles objects up
    plan = controller.plan()
    assert len(plan.edges) == 3
    assert list(plan.edges) == sorted(plan.edges)
    # Equi-depth: every planned band holds roughly n / shards objects.
    assert max(plan.counts_after) <= 2 * min(plan.counts_after)
    assert plan.cost_after < plan.cost_before
    assert plan.improves


# -- the double-write window ------------------------------------------------------


def test_window_queries_merge_two_shard_ownership_and_dedup():
    service = make_service(shards=2)
    service.register(1, 100.0, 0.2, 0.0)   # slow: band 0
    service.register(2, 500.0, 1.5, 0.0)   # fast: band 1
    state = service.begin_migration(1, dest=1)
    try:
        assert service.owners_of(1) == (0, 1)
        assert service.shard_of(1) == 0  # ownership moves at cutover
        # Resident on both shards, yet every read sees it exactly once.
        assert all(1 in pop for pop in service.shard_populations())
        assert service.within(0.0, Y_MAX, 0.0, 5.0) == {1, 2}
        assert service.snapshot_at(0.0, Y_MAX, 1.0) == {1, 2}
        ranked = service.nearest(100.0, 1.0, k=4)
        assert [oid for oid, _ in ranked] == [1, 2]
        assert service.proximity_pairs(Y_MAX, 0.0, 1.0) == {(1, 2)}
        # A report mid-window double-writes: both copies take the new
        # motion, so the cutover can land on either side losslessly.
        service.report(1, 110.0, 0.3, 2.0)
        for pop_db in service._shards:
            if 1 in pop_db:
                assert pop_db.motion_of(1).v == 0.3
    finally:
        service.commit_migration(state)
    assert service.owners_of(1) == (1,)
    assert [1 in pop for pop in service.shard_populations()] == [
        False, True,
    ]
    assert service.location_of(1, 2.0) == 110.0


def test_abort_drops_the_destination_copy_only():
    service = make_service(shards=2)
    service.register(1, 100.0, 0.2, 0.0)
    state = service.begin_migration(1, dest=1)
    service.abort_migration(state)
    assert service.owners_of(1) == (0,)
    assert [1 in pop for pop in service.shard_populations()] == [
        True, False,
    ]
    with pytest.raises(StaleMigrationError):
        service.commit_migration(state)  # the fencing token is dead


def test_speed_crossing_report_never_forks_ownership():
    """The stale-routing regression (satellite of the rebalance work):
    routing consults the ownership table, never a motion recompute, so
    a report that crosses band edges leaves exactly one owner."""
    service = make_service(shards=4)
    service.register(1, 100.0, 0.2, 0.0)  # band 0
    for tick in range(1, 6):
        # Bounce between the slowest and fastest bands.
        v = 1.6 if tick % 2 else 0.2
        service.report(1, 100.0 + tick, v, float(tick))
        owners = service.owners_of(1)
        assert len(owners) == 1
        holders = [
            shard for shard, pop in enumerate(service.shard_populations())
            if 1 in pop
        ]
        assert holders == [service.shard_of(1)]
        assert service.snapshot_at(99.0, 111.0, float(tick)) == {1}
    assert service.location_of(1, 5.0) == 105.0


# -- the controller end to end ----------------------------------------------------


def test_rebalance_once_improves_spread_two_fold():
    service = make_service(shards=4)
    populate_skewed(service, 400, seed=2)
    controller = RebalanceController(service)
    report = controller.rebalance_once(force=True)
    assert report.triggered
    assert report.migrated > 0
    assert report.skew_after * 2 <= report.skew_before
    assert sum(report.counts_after) == 400  # nothing lost, nothing forked
    counters = service.metrics.snapshot()["counters"]
    assert counters["rebalance_runs"] == 1
    assert counters["rebalance_migrations"] == report.migrated
    assert counters["rebalance_band_updates"] >= 1
    # Convergence: a second pass finds an already-balanced catalog.
    assert controller.rebalance_once(force=True).migrated == 0


def test_rebalance_respects_gates_and_caps():
    service = make_service(shards=4)
    populate_skewed(service, 60, seed=3)
    gated = RebalanceController(
        service, RebalanceConfig(min_objects=1000)
    )
    assert not gated.rebalance_once(force=True).triggered
    capped = RebalanceController(
        service, RebalanceConfig(min_objects=1, max_migrations=5)
    )
    report = capped.rebalance_once(force=True)
    assert report.triggered
    assert report.migrated + report.aborted + report.skipped <= 5


def test_latency_skew_detector_needs_two_reporting_shards():
    service = make_service(shards=4)
    populate_skewed(service, 100, seed=4)
    controller = RebalanceController(service)
    # No compute spans at all, then only one shard reporting: both are
    # "no evidence", not "infinitely skewed".
    assert controller.latency_skew() == 0.0
    service.metrics.record_shard_latency(0, "query_batch.compute", 0.1)
    assert controller.latency_skew() == 0.0
    service.metrics.record_shard_latency(1, "query_batch.compute", 0.1)
    assert controller.latency_skew() == pytest.approx(1.0)


def test_latency_skew_trips_should_rebalance_when_counts_are_even():
    service = make_service(shards=4)
    rng = random.Random(5)
    # A perfectly even placement: the count detector sees nothing.
    for oid in range(200):
        v = V_MIN + (V_MAX - V_MIN) * ((oid % 4) + 0.5) / 4
        service.register(oid, rng.uniform(0, Y_MAX), v, 0.0)
    controller = RebalanceController(
        service,
        RebalanceConfig(skew_threshold=1.5, latency_skew_threshold=2.0),
    )
    assert controller.skew() == pytest.approx(1.0)
    assert not controller.should_rebalance()
    # One slow lane: cost imbalance the counts cannot see.
    for shard in range(4):
        latency = 0.200 if shard == 0 else 0.010
        for _ in range(10):
            service.metrics.record_shard_latency(
                shard, "query_batch.compute", latency
            )
    assert controller.latency_skew() > 2.0
    assert controller.should_rebalance()
    report = controller.maybe_rebalance()
    assert report is not None
    counters = service.metrics.snapshot()["counters"]
    assert counters["rebalance_auto_triggers"] == 1
    assert counters["rebalance_runs"] == 1


def test_maybe_rebalance_is_a_no_op_when_balanced():
    service = make_service(shards=4)
    rng = random.Random(6)
    for oid in range(100):
        service.register(
            oid,
            rng.uniform(0, Y_MAX),
            rng.uniform(V_MIN, V_MAX),
            0.0,
        )
    controller = RebalanceController(service)
    # Balanced latencies: the gate stays shut, no run is charged.
    for shard in range(4):
        service.metrics.record_shard_latency(
            shard, "query_batch.compute", 0.01
        )
    if not controller.should_rebalance():
        assert controller.maybe_rebalance() is None
        counters = service.metrics.snapshot()["counters"]
        assert counters.get("rebalance_auto_triggers", 0) == 0
        assert counters.get("rebalance_runs", 0) == 0


def test_replicated_rebalance_matches_oracle():
    service = FaultTolerantMotionService(
        Y_MAX, V_MIN, V_MAX,
        shards=4,
        replication_factor=2,
        router="velocity",
        retry=RetryPolicy(attempts=3, backoff_s=0.001, sleep=lambda s: None),
    )
    oracle = MotionDatabase(Y_MAX, V_MIN, V_MAX, method="forest")
    populate_skewed(service, 200, seed=4, oracle=oracle)
    controller = RebalanceController(service)
    report = controller.rebalance_once(force=True)
    assert report.migrated > 0
    assert report.skew_after * 2 <= report.skew_before
    now = service.now
    assert service.within(0.0, Y_MAX, 0.0, now + 10.0) == oracle.within(
        0.0, Y_MAX, 0.0, now + 10.0
    )
    assert service.snapshot_at(
        0.0, Y_MAX / 2, now + 1.0
    ) == oracle.snapshot_at(0.0, Y_MAX / 2, now + 1.0)
    assert service.nearest(Y_MAX / 3, now + 1.0, k=5) == oracle.nearest(
        Y_MAX / 3, now + 1.0, k=5
    )
    service.close()


# -- the migration-storm differential (queries during the window) -----------------


def check_against_oracle(service, oracle, rng):
    """Scalar vs ``query_batch`` vs oracle, dedup asserted by type."""
    now = max(service.now, oracle.now)
    y1 = rng.uniform(0.0, Y_MAX / 2)
    y2 = y1 + rng.uniform(50.0, Y_MAX / 2)
    ops = [
        Within(y1, y2, now, now + rng.uniform(1.0, 10.0)),
        SnapshotAt(y1, y2, now + 1.0),
        Nearest(rng.uniform(0.0, Y_MAX), now + 1.0, 5),
        ProximityPairs(2.0, now, now + 2.0),
    ]
    batch = service.query_batch(ops)
    scalar = [
        service.within(ops[0].y1, ops[0].y2, ops[0].t1, ops[0].t2),
        service.snapshot_at(ops[1].y1, ops[1].y2, ops[1].t),
        service.nearest(ops[2].y, ops[2].t, ops[2].k),
        service.proximity_pairs(ops[3].d, ops[3].t1, ops[3].t2),
    ]
    expected = [
        oracle.within(ops[0].y1, ops[0].y2, ops[0].t1, ops[0].t2),
        oracle.snapshot_at(ops[1].y1, ops[1].y2, ops[1].t),
        oracle.nearest(ops[2].y, ops[2].t, ops[2].k),
        oracle.proximity_pairs(ops[3].d, ops[3].t1, ops[3].t2),
    ]
    assert batch == scalar == expected
    ranked_oids = [oid for oid, _ in scalar[2]]
    assert len(ranked_oids) == len(set(ranked_oids))  # kNN dedups by oid
    assert all(a < b for a, b in scalar[3])  # no self-pairs from copies


def test_migration_storm_differential():
    """Satellite: scalar vs batch vs oracle while migrations are OPEN
    (objects resident on two shards) and across commits/aborts."""
    service = make_service(shards=3)
    oracle = MotionDatabase(Y_MAX, V_MIN, V_MAX, method="forest")
    populate_skewed(service, 120, seed=5, oracle=oracle)
    controller = RebalanceController(service, RebalanceConfig(min_objects=1))
    rng = random.Random(5)
    layouts = [(0.3, 0.8), (0.6, 1.2)]
    committed = 0
    for round_no in range(4):
        edges = layouts[round_no % 2]
        if edges != service.router.band_edges():
            service.set_bands(edges)
        moves = controller.moves()[:6]
        open_states = [
            service.begin_migration(oid, dest) for oid, _src, dest in moves
        ]
        check_against_oracle(service, oracle, rng)  # mid-window reads
        for i, state in enumerate(open_states):
            if i % 3 == 2:
                service.abort_migration(state)
            else:
                service.commit_migration(state)
                committed += 1
        check_against_oracle(service, oracle, rng)  # post-cutover reads
    assert committed > 0
    assert len(service) == 120
    populations = service.shard_populations()
    for oid in range(120):
        holders = [s for s, pop in enumerate(populations) if oid in pop]
        assert holders == [service.shard_of(oid)]


# -- live repartitioning mid-soak -------------------------------------------------


@pytest.mark.soak
def test_adversarial_soak_with_rebalances_converges():
    report = run_soak(SoakConfig(
        scenario="adversarial",
        n=300,
        ticks=6,
        shards=4,
        replication=2,
        router="velocity",
        rebalances=2,
        subscriptions=4,
        crashes=0,
        seed=7,
    ))
    assert report.ok, report.divergence_labels
    stats = report.rebalance
    assert stats["runs"] == 2
    assert stats["migrated"] > 0
    assert stats["skew_final"] * 2 <= stats["skew_initial"]
