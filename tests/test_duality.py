"""Tests for the dual transforms and query geometry (paper §3.1-3.2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConvexRegion,
    HalfPlane,
    LinearMotion1D,
    MORQuery1D,
    MotionModel,
    Terrain1D,
    approximation_area,
    approximation_area_bound,
    best_observation_horizon,
    hough_x,
    hough_y,
    hough_y_b_range,
    hough_y_matches,
    matches_1d,
    mor_wedge,
    observation_horizons,
    reflect_motion,
    reflect_query,
    residence_interval,
    subterrain_bounds,
    subterrain_of,
)
from repro.errors import InvalidMotionError

MODEL = MotionModel(Terrain1D(1000.0), v_min=0.16, v_max=1.66)


def motions(sign):
    """Hypothesis strategy for motions of one velocity sign inside the band."""
    return st.builds(
        LinearMotion1D,
        y0=st.floats(min_value=0, max_value=1000),
        v=st.floats(min_value=0.16, max_value=1.66).map(lambda v: sign * v),
        t0=st.floats(min_value=0, max_value=500),
    )


def queries():
    return st.builds(
        lambda y1, dy, t1, dt: MORQuery1D(y1, y1 + dy, t1, t1 + dt),
        y1=st.floats(min_value=0, max_value=900),
        dy=st.floats(min_value=0, max_value=150),
        t1=st.floats(min_value=500, max_value=600),
        dt=st.floats(min_value=0, max_value=60),
    )


class TestHoughX:
    def test_intercept_at_reference(self):
        motion = LinearMotion1D(y0=100.0, v=2.0, t0=10.0)
        v, a = hough_x(motion, t_ref=0.0)
        assert v == 2.0
        assert a == 80.0  # y at t=0
        v2, a2 = hough_x(motion, t_ref=10.0)
        assert a2 == 100.0

    def test_wedge_is_exact_positive(self):
        query = MORQuery1D(100, 200, 50, 60)
        wedge = mor_wedge(query, MODEL, sign=+1)
        # Object crossing into the range during the window.
        motion = LinearMotion1D(y0=90.0, v=1.0, t0=40.0)  # at t=50 -> 100
        assert matches_1d(motion, query)
        assert wedge.contains(*hough_x(motion))
        # Object that stays below the range for the whole window.
        slow = LinearMotion1D(y0=0.0, v=0.2, t0=0.0)  # at t=60 -> 12
        assert not matches_1d(slow, query)
        assert not wedge.contains(*hough_x(slow))

    def test_wedge_speed_band_constraints(self):
        query = MORQuery1D(0, 1000, 0, 100)
        wedge = mor_wedge(query, MODEL, sign=+1)
        assert not wedge.contains(0.01, 500.0)  # below v_min
        assert not wedge.contains(2.0, 500.0)  # above v_max
        assert wedge.contains(1.0, 500.0)

    def test_wedge_respects_t_ref(self):
        query = MORQuery1D(100, 200, 50, 60)
        motion = LinearMotion1D(y0=90.0, v=1.0, t0=40.0)
        wedge = mor_wedge(query, MODEL, sign=+1, t_ref=30.0)
        assert wedge.contains(*hough_x(motion, t_ref=30.0))


def _near_wedge_boundary(wedge, x, y, rel_tol=1e-7):
    """True when the dual point sits within roundoff of a constraint line."""
    for hp in wedge.constraints:
        scale = 1.0 + abs(hp.cx * x) + abs(hp.cy * y) + abs(hp.rhs)
        if abs(hp.cx * x + hp.cy * y - hp.rhs) <= rel_tol * scale:
            return True
    return False


def _assert_wedge_consistent(wedge, motion, query, t_ref=0.0):
    """Wedge membership must equal the predicate away from float boundaries."""
    point = hough_x(motion, t_ref)
    if wedge.contains(*point) != matches_1d(motion, query):
        assert _near_wedge_boundary(wedge, *point), (
            f"wedge/predicate disagree far from boundary: {motion} {query}"
        )


@settings(max_examples=300, deadline=None)
@given(motion=motions(+1), query=queries())
def test_property_wedge_positive_equals_predicate(motion, query):
    _assert_wedge_consistent(mor_wedge(query, MODEL, sign=+1), motion, query)


@settings(max_examples=300, deadline=None)
@given(motion=motions(-1), query=queries())
def test_property_wedge_negative_equals_predicate(motion, query):
    _assert_wedge_consistent(mor_wedge(query, MODEL, sign=-1), motion, query)


class TestConvexRegion:
    UNIT = ConvexRegion(
        (
            HalfPlane(-1, 0, 0),  # x >= 0
            HalfPlane(1, 0, 1),  # x <= 1
            HalfPlane(0, -1, 0),  # y >= 0
            HalfPlane(0, 1, 1),  # y <= 1
        )
    )

    def test_contains(self):
        assert self.UNIT.contains(0.5, 0.5)
        assert not self.UNIT.contains(1.5, 0.5)

    def test_rect_outside(self):
        assert self.UNIT.rect_outside(2, 2, 3, 3)
        assert not self.UNIT.rect_outside(0.5, 0.5, 2, 2)

    def test_rect_inside(self):
        assert self.UNIT.rect_inside(0.2, 0.2, 0.8, 0.8)
        assert not self.UNIT.rect_inside(0.2, 0.2, 1.5, 0.8)

    def test_may_intersect_is_conservative(self):
        # A rect that truly intersects must never be pruned.
        assert self.UNIT.may_intersect_rect(0.9, 0.9, 2, 2)


class TestHoughY:
    def test_dual_point(self):
        motion = LinearMotion1D(y0=10.0, v=2.0, t0=0.0)
        n, b = hough_y(motion, y_r=0.0)
        assert n == 0.5
        assert b == -5.0  # crosses y=0 at t=-5

    def test_undefined_for_stationary(self):
        with pytest.raises(InvalidMotionError):
            hough_y(LinearMotion1D(0.0, 0.0))

    def test_b_range_validation(self):
        with pytest.raises(InvalidMotionError):
            hough_y_b_range(MORQuery1D(0, 1, 0, 1), 0.0, -1.0, 1.0)

    def test_exact_match_filter(self):
        query = MORQuery1D(100, 200, 50, 60)
        motion = LinearMotion1D(y0=90.0, v=1.0, t0=40.0)
        n, b = hough_y(motion, y_r=0.0)
        assert hough_y_matches(n, b, query, y_r=0.0)


def _near_query_boundary(motion, query, rel_tol=1e-7):
    """The motion's endpoint positions sit within roundoff of the range."""
    for t in (query.t1, query.t2):
        y = motion.position(t)
        for edge in (query.y1, query.y2):
            if abs(y - edge) <= rel_tol * (1.0 + abs(y) + abs(edge)):
                return True
    return False


@settings(max_examples=300, deadline=None)
@given(motion=motions(+1), query=queries(), y_r=st.sampled_from([0.0, 250.0, 500.0]))
def test_property_hough_y_exact_equals_predicate(motion, query, y_r):
    n, b = hough_y(motion, y_r)
    if hough_y_matches(n, b, query, y_r) != matches_1d(motion, query):
        assert _near_query_boundary(motion, query), (
            "dual/primal disagree away from the boundary"
        )


@settings(max_examples=300, deadline=None)
@given(motion=motions(+1), query=queries(), y_r=st.sampled_from([0.0, 250.0, 500.0]))
def test_property_b_range_has_no_false_negatives(motion, query, y_r):
    """The rectangle approximation must be a superset of the true answer."""
    n, b = hough_y(motion, y_r)
    b_lo, b_hi = hough_y_b_range(query, y_r, MODEL.v_min, MODEL.v_max)
    if matches_1d(motion, query):
        assert b_lo - 1e-9 <= b <= b_hi + 1e-9


class TestApproximationArea:
    def test_equation_1(self):
        # E = 0.5 * ((vmax-vmin)/(vmin*vmax))^2 * (|y2-yr| + |y1-yr|)
        e = approximation_area(0.5, 1.0, y1=10.0, y2=30.0, y_r=0.0)
        assert e == pytest.approx(0.5 * 1.0 * (30 + 10))

    def test_equation_2_bound(self):
        bound = approximation_area_bound(0.5, 1.0, y_max=100.0, c=4)
        assert bound == pytest.approx(0.5 * 1.0 * 25.0)
        with pytest.raises(ValueError):
            approximation_area_bound(0.5, 1.0, 100.0, 0)

    def test_bound_covers_small_queries(self):
        """Eq (2) bounds eq (1) for any query narrower than a subterrain."""
        c, y_max = 4, 1000.0
        horizons = observation_horizons(y_max, c)
        for y1 in [0.0, 120.0, 370.0, 655.0, 874.9]:
            y2 = y1 + y_max / c / 2
            query = MORQuery1D(y1, y2, 0, 1)
            best = horizons[best_observation_horizon(query, horizons)]
            e = approximation_area(0.16, 1.66, y1, y2, best)
            assert e <= approximation_area_bound(0.16, 1.66, y_max, c) * (
                1 + 1e-9
            ) + 1e-9

    def test_best_horizon_picks_minimiser(self):
        horizons = [125.0, 375.0, 625.0, 875.0]
        query = MORQuery1D(600, 660, 0, 1)
        assert best_observation_horizon(query, horizons) == 2
        with pytest.raises(ValueError):
            best_observation_horizon(query, [])


class TestReflection:
    def test_reflect_motion_is_involution(self):
        motion = LinearMotion1D(100.0, -1.2, 3.0)
        twice = reflect_motion(reflect_motion(motion, 1000.0), 1000.0)
        assert twice == motion

    def test_reflection_preserves_matching(self):
        motion = LinearMotion1D(900.0, -1.0, 0.0)
        query = MORQuery1D(700, 800, 100, 150)
        reflected_m = reflect_motion(motion, 1000.0)
        reflected_q = reflect_query(query, 1000.0)
        assert matches_1d(motion, query) == matches_1d(reflected_m, reflected_q)
        assert reflected_m.v == 1.0


@settings(max_examples=200, deadline=None)
@given(motion=motions(-1), query=queries())
def test_property_reflection_preserves_predicate(motion, query):
    y_max = MODEL.terrain.y_max
    reflected = matches_1d(
        reflect_motion(motion, y_max), reflect_query(query, y_max)
    )
    if matches_1d(motion, query) != reflected:
        # Reflection arithmetic (y_max - y) can shift an exact-boundary
        # case by an ulp; only such cases may disagree.
        assert _near_query_boundary(motion, query)


class TestSubterrains:
    def test_horizons_at_subterrain_midpoints(self):
        assert observation_horizons(1000.0, 4) == [125.0, 375.0, 625.0, 875.0]
        with pytest.raises(ValueError):
            observation_horizons(1000.0, 0)

    def test_bounds_and_lookup(self):
        assert subterrain_bounds(1000.0, 4, 1) == (250.0, 500.0)
        assert subterrain_of(0.0, 1000.0, 4) == 0
        assert subterrain_of(999.9, 1000.0, 4) == 3
        assert subterrain_of(1000.0, 1000.0, 4) == 3  # clamped
        with pytest.raises(ValueError):
            subterrain_bounds(1000.0, 4, 4)

    def test_residence_interval(self):
        motion = LinearMotion1D(y0=0.0, v=1.0, t0=0.0)
        assert residence_interval(motion, 250.0, 500.0, t_from=0.0) == (
            250.0,
            500.0,
        )
        # Clamped by t_from when already inside.
        inside = LinearMotion1D(y0=300.0, v=1.0, t0=0.0)
        assert residence_interval(inside, 250.0, 500.0, t_from=10.0) == (
            10.0,
            200.0,
        )
        # None when the object never visits.
        away = LinearMotion1D(y0=600.0, v=1.0, t0=0.0)
        assert residence_interval(away, 250.0, 500.0, t_from=0.0) is None

    def test_residence_interval_with_deadline(self):
        motion = LinearMotion1D(y0=0.0, v=1.0, t0=0.0)
        assert residence_interval(
            motion, 250.0, 500.0, t_from=0.0, t_until=300.0
        ) == (250.0, 300.0)
        assert (
            residence_interval(motion, 250.0, 500.0, t_from=0.0, t_until=100.0)
            is None
        )
