"""The SIGKILL smoke drill as a pytest (``make durability-smoke``).

Real process death, no simulation: a subprocess service takes a write
storm, is SIGKILLed mid-write, and a fresh service recovered from the
same directory must hold every acknowledged update.  The in-process
crash matrix (``test_wal_durability.py``) covers the boundary cases;
this is the end-to-end proof that the pieces compose against a real
kernel and file system.
"""

import pytest

from repro.storage.crashdrill import run_drill

pytestmark = [pytest.mark.durability, pytest.mark.slow]


def test_sigkill_drill_loses_no_acknowledged_update(tmp_path):
    status = run_drill(
        directory=str(tmp_path),
        fsync="always",
        shards=2,
        objects=30,
        kill_after_acks=150,
        seed=42,
        timeout_s=120.0,
    )
    assert status == 0
    # The drill leaves the recovered directory behind for inspection.
    assert (tmp_path / "shard-00" / "MANIFEST").exists()


def test_drill_parses_its_own_transcript():
    from repro.storage.crashdrill import _parse_lines

    tried, acked = _parse_lines([
        "TRY 3 1.5 0.25 1.0\n",
        "ACK 3 1.0\n",
        "TRY 3 2.5 -0.25 2.0\n",   # announced, never acknowledged
        "noise line\n",
    ])
    assert tried == {3: {1.0: (1.5, 0.25), 2.0: (2.5, -0.25)}}
    assert acked == {3: 1.0}
