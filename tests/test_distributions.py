"""Tests for the alternative workload distributions (§7 future work)."""

import random
import statistics

import pytest

from repro.kinetic import count_crossings
from repro.workloads import paper_model
from repro.workloads.distributions import (
    ALL_DISTRIBUTIONS,
    GaussianClusters,
    Platoons,
    RushHour,
    SkewedSpeeds,
    UniformDistribution,
)

MODEL = paper_model()


@pytest.mark.parametrize(
    "distribution", ALL_DISTRIBUTIONS, ids=[d.name for d in ALL_DISTRIBUTIONS]
)
class TestAllDistributionsValid:
    def test_motions_respect_the_model(self, distribution):
        rng = random.Random(1)
        for obj in distribution.population(rng, MODEL, 300):
            MODEL.validate(obj.motion)

    def test_population_ids_unique(self, distribution):
        rng = random.Random(2)
        objects = distribution.population(rng, MODEL, 100)
        assert len({o.oid for o in objects}) == 100

    def test_reproducible(self, distribution):
        a = distribution.population(random.Random(3), MODEL, 50)
        b = distribution.population(random.Random(3), MODEL, 50)
        assert a == b


class TestDistributionShapes:
    def test_gaussian_clusters_concentrate(self):
        rng = random.Random(5)
        dist = GaussianClusters(centers=(500.0,), sigma=30.0)
        objects = dist.population(rng, MODEL, 500)
        near = sum(1 for o in objects if 400 <= o.motion.y0 <= 600)
        assert near > 450  # ~3 sigma captures nearly everything

    def test_skewed_speeds_slow_heavy(self):
        rng = random.Random(6)
        slow = SkewedSpeeds(shape=4.0).population(rng, MODEL, 500)
        fast = SkewedSpeeds(shape=0.25).population(rng, MODEL, 500)
        slow_mean = statistics.mean(abs(o.motion.v) for o in slow)
        fast_mean = statistics.mean(abs(o.motion.v) for o in fast)
        assert slow_mean < fast_mean
        assert slow_mean < (MODEL.v_min + MODEL.v_max) / 2

    def test_rush_hour_biases_direction(self):
        rng = random.Random(7)
        objects = RushHour(inbound_fraction=0.9).population(rng, MODEL, 500)
        inbound = sum(1 for o in objects if o.motion.v > 0)
        assert inbound > 400

    def test_platoons_have_few_crossings(self):
        """The §3.6 sweet spot: convoys barely overtake each other."""
        rng = random.Random(8)
        convoy = Platoons(platoons=1, jitter=0.02).population(rng, MODEL, 150)
        grouped = Platoons(platoons=4, jitter=0.01).population(
            rng, MODEL, 150
        )
        uniform = UniformDistribution().population(rng, MODEL, 150)
        window = 100.0
        m_convoy = count_crossings(convoy, 0.0, window)
        m_grouped = count_crossings(grouped, 0.0, window)
        m_uniform = count_crossings(uniform, 0.0, window)
        # One convoy barely overtakes; groups cross each other but far
        # less than bidirectional uniform traffic.
        assert m_convoy < m_uniform / 10
        assert m_grouped < m_uniform
