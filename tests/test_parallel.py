"""Multi-process shard execution over shared-memory columns.

The contract under test: the parallel tier changes *where* a shard's
kernels run, never what they answer.  Layer by layer —

* :class:`SharedMotionColumns` mirrors :class:`MotionColumns`
  mutation-for-mutation (same rows, same version), publishes every
  state through the seqlock so a cross-process reader either gets a
  torn-free snapshot or a typed :class:`TornSegmentError`, and never
  leaks a ``/dev/shm`` segment past ``close()``;
* the capacity-doubling growth policy (both stores) keeps append
  amortized O(1) and — the regression this PR fixes — churn at a
  fixed population never grows the arrays at all;
* :class:`WorkerPool` executes per-shard sub-batches byte-identically
  to the in-process path, across a differential wall of pool widths x
  shard counts x seeds;
* a pooled service torn down with ``close()`` leaves no segments and
  no worker processes behind.
"""

import os
import random

import pytest

from repro.core.model import LinearMotion1D
from repro.service import (
    FaultTolerantMotionService,
    ShardedMotionService,
    WorkerPool,
)
from repro.vector.columns import _MIN_CAPACITY, MotionColumns
from repro.vector.evaluate import evaluate_arrays
from repro.vector.ops import Nearest, RegisterOp, SnapshotAt, Within
from repro.vector.shm import (
    SharedMotionColumns,
    TornSegmentError,
    attach_segment,
    live_segment_names,
    read_snapshot,
    segment_size,
)

pytestmark = pytest.mark.parallel

Y_MAX, V_MIN, V_MAX = 1000.0, 0.16, 1.66


def random_motion(rng):
    speed = rng.uniform(V_MIN, V_MAX) * rng.choice([1.0, -1.0])
    return LinearMotion1D(rng.uniform(0, Y_MAX), speed, rng.uniform(0, 5))


def mixed_queries(rng, count):
    ops = []
    for q in range(count):
        t1 = rng.uniform(5, 40)
        y1 = rng.uniform(0, Y_MAX - 120)
        kind = q % 3
        if kind == 0:
            ops.append(Within(y1, y1 + rng.uniform(10, 120), t1, t1 + 10))
        elif kind == 1:
            ops.append(SnapshotAt(y1, y1 + rng.uniform(10, 120), t1))
        else:
            ops.append(Nearest(y1, t1, k=rng.randint(1, 5)))
    return ops


def rows_by_oid(columns):
    oid, y0, v, t0 = columns.arrays()
    return sorted(
        zip(oid.tolist(), y0.tolist(), v.tolist(), t0.tolist())
    )


# -- shared columns mirror the in-process store -------------------------------


def test_shared_columns_match_plain_columns_under_churn():
    rng = random.Random(11)
    plain, shared = MotionColumns(), SharedMotionColumns()
    try:
        live = []
        for step in range(500):
            roll = rng.random()
            if roll < 0.6 or not live:
                oid = rng.randrange(200)
                motion = random_motion(rng)
                plain.upsert(oid, motion)
                shared.upsert(oid, motion)
                if oid not in live:
                    live.append(oid)
            elif roll < 0.8:
                oid = rng.choice(live)
                live.remove(oid)
                plain.delete(oid)
                shared.delete(oid)
            else:
                events = []
                for _ in range(rng.randrange(1, 8)):
                    oid = rng.randrange(200)
                    if rng.random() < 0.3 and oid in live:
                        events.append(("delete", oid, None))
                        live.remove(oid)
                    else:
                        events.append(("update", oid, random_motion(rng)))
                        if oid not in live:
                            live.append(oid)
                plain.apply_events(events)
                shared.apply_events(events)
            assert len(shared) == len(plain)
            assert shared.version == plain.version
        assert rows_by_oid(shared) == rows_by_oid(plain)
        for oid in live:
            assert shared.motion_of(oid) == plain.motion_of(oid)
    finally:
        shared.close()


def test_snapshot_read_equals_owner_arrays():
    rng = random.Random(23)
    shared = SharedMotionColumns()
    try:
        for oid in range(120):
            shared.upsert(oid, random_motion(rng))
        shm = attach_segment(shared.segment_name)
        try:
            oid, y0, v, t0, version = read_snapshot(shm)
            assert version == shared.version
            assert sorted(
                zip(oid.tolist(), y0.tolist(), v.tolist(), t0.tolist())
            ) == rows_by_oid(shared)
            # The snapshot is a copy: mutating the owner afterwards
            # must not reach into it.
            before = y0.copy()
            shared.upsert(0, random_motion(rng))
            assert (y0 == before).all()
        finally:
            shm.close()
    finally:
        shared.close()


def test_growth_changes_segment_and_retires_old_name():
    shared = SharedMotionColumns()
    rng = random.Random(31)
    try:
        first_name = shared.segment_name
        first_capacity = shared.capacity
        for oid in range(first_capacity + 1):  # force one growth
            shared.upsert(oid, random_motion(rng))
        assert shared.segment_name != first_name
        assert shared.segment_count == 2
        # The retired segment froze mid-write (odd seq, forever): a
        # late reader times out with the typed error instead of
        # returning the pre-growth rows as if they were current.
        stale = attach_segment(first_name)
        try:
            with pytest.raises(TornSegmentError):
                read_snapshot(stale, timeout_s=0.05)
        finally:
            stale.close()
        # The new segment answers normally.
        shm = attach_segment(shared.segment_name)
        try:
            oid, *_rest = read_snapshot(shm)
            assert len(oid) == first_capacity + 1
        finally:
            shm.close()
    finally:
        shared.close()


def test_batch_is_one_publication_window():
    """A reader never sees a half-applied batch: the version jumps by
    exactly one per apply_events, and the row count it reads is always
    a published state's count."""
    rng = random.Random(37)
    shared = SharedMotionColumns()
    try:
        shared.apply_events(
            [("insert", oid, random_motion(rng)) for oid in range(50)]
        )
        shm = attach_segment(shared.segment_name)
        try:
            _, _, _, _, version = read_snapshot(shm)
            assert version == 1
        finally:
            shm.close()
        shared.apply_events(
            [("delete", oid, None) for oid in range(25)]
            + [("insert", 100 + oid, random_motion(rng)) for oid in range(10)]
        )
        shm = attach_segment(shared.segment_name)
        try:
            oid, _, _, _, version = read_snapshot(shm)
            assert version == 2
            assert len(oid) == 35
        finally:
            shm.close()
    finally:
        shared.close()


# -- growth policy (the unbounded-growth regression) --------------------------


@pytest.mark.parametrize("factory", [MotionColumns, SharedMotionColumns])
def test_churn_at_fixed_population_never_grows(factory):
    """Delete+insert churn at constant population must not grow the
    arrays at all — the old policy compounded the allocation on every
    growth, so long-lived churn marched capacity upward unboundedly."""
    rng = random.Random(41)
    columns = factory()
    population = 100
    try:
        for oid in range(population):
            columns.upsert(oid, random_motion(rng))
        settled = columns.capacity
        next_oid = population
        for _ in range(2000):
            columns.delete(next_oid - population)  # oldest live oid
            columns.upsert(next_oid, random_motion(rng))
            next_oid += 1
            assert len(columns) == population
        assert columns.capacity == settled
        # Batch churn through apply_events (_reserve) holds too.
        for _ in range(50):
            events = [
                ("delete", oid, None)
                for oid in range(next_oid - 20, next_oid)
            ] + [
                ("insert", next_oid + i, random_motion(rng))
                for i in range(20)
            ]
            columns.apply_events(events)
            next_oid += 20
        assert columns.capacity == settled
    finally:
        if hasattr(columns, "close"):
            columns.close()


@pytest.mark.parametrize("factory", [MotionColumns, SharedMotionColumns])
def test_growth_is_amortized_doubling(factory):
    """Appends trigger O(log n) growths and capacity tracks 2x the
    requirement, not the historical allocation."""
    rng = random.Random(43)
    columns = factory()
    capacities = {columns.capacity}
    try:
        for oid in range(1500):
            columns.upsert(oid, random_motion(rng))
            capacities.add(columns.capacity)
            assert columns.capacity <= max(_MIN_CAPACITY, 4 * len(columns))
        assert len(capacities) <= 12  # doubling: log2(1500/16) + slack
    finally:
        if hasattr(columns, "close"):
            columns.close()


def test_segment_size_matches_layout():
    assert segment_size(0) == 32
    assert segment_size(100) == 32 + 4 * 8 * 100


# -- worker pool --------------------------------------------------------------


@pytest.fixture(scope="module")
def pool2():
    pool = WorkerPool(2)
    yield pool
    pool.close()


@pytest.fixture(scope="module")
def pool4():
    pool = WorkerPool(4)
    yield pool
    pool.close()


def test_pool_answers_match_inline_dispatch(pool2):
    rng = random.Random(47)
    stores = [SharedMotionColumns() for _ in range(3)]
    try:
        for shard, store in enumerate(stores):
            for oid in range(shard, 240, 3):
                store.upsert(oid, random_motion(rng))
        ops = mixed_queries(rng, 18)
        tasks = [
            (shard, store.segment_name, ops)
            for shard, store in enumerate(stores)
        ]
        answers, elapsed = pool2.query_shards(tasks)
        assert sorted(answers) == [0, 1, 2]
        assert all(took >= 0.0 for took in elapsed.values())
        for shard, store in enumerate(stores):
            want = [evaluate_arrays(*store.arrays(), op) for op in ops]
            assert answers[shard] == want
    finally:
        for store in stores:
            store.close()


def test_pool_rejects_bad_width_and_closed_use():
    with pytest.raises(ValueError):
        WorkerPool(0)
    pool = WorkerPool(1)
    pool.close()
    pool.close()  # idempotent
    with pytest.raises(RuntimeError):
        pool.query_shards([])


def test_worker_reports_bad_segment_instead_of_dying(pool2):
    """A worker-side failure (unattachable segment) surfaces as a
    crash error naming the shard — and the lane stays usable."""
    from repro.service.parallel import WorkerCrashError

    with pytest.raises(WorkerCrashError) as excinfo:
        pool2.query_shards([(0, "repro-cols-no-such-segment", [])])
    assert excinfo.value.shards == [0]
    store = SharedMotionColumns()
    try:
        rng = random.Random(53)
        store.upsert(1, random_motion(rng))
        ops = mixed_queries(rng, 3)
        answers, _ = pool2.query_shards([(0, store.segment_name, ops)])
        assert answers[0] == [
            evaluate_arrays(*store.arrays(), op) for op in ops
        ]
    finally:
        store.close()


# -- differential wall: pooled service vs the in-process path -----------------


def _populate(service, seed, n=150):
    rng = random.Random(seed)
    ops = []
    for oid in range(n):
        speed = rng.uniform(V_MIN, V_MAX) * rng.choice([1.0, -1.0])
        ops.append(RegisterOp(oid, rng.uniform(0, Y_MAX), speed, 0.0))
    service.apply_batch(ops)
    return rng


@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("seed", [101, 202, 303])
def test_pooled_service_is_byte_identical(pool2, pool4, shards, seed):
    oracle = ShardedMotionService(
        Y_MAX, V_MIN, V_MAX, shards=shards, cache_capacity=0
    )
    rng = _populate(oracle, seed)
    stream = mixed_queries(rng, 24)
    want = oracle.query_batch(stream)
    for pool in (pool2, pool4):
        pooled = ShardedMotionService(
            Y_MAX, V_MIN, V_MAX, shards=shards, cache_capacity=0, pool=pool
        )
        try:
            _populate(pooled, seed)
            assert pooled.query_batch(stream) == want
        finally:
            pooled.close()


def test_pooled_service_owns_and_closes_its_pool():
    service = ShardedMotionService(
        Y_MAX, V_MIN, V_MAX, shards=2, workers=2, cache_capacity=0
    )
    _populate(service, 7, n=40)
    pool = service.pool
    assert service.parallel_workers == 2
    assert pool.size == 2
    rng = random.Random(7)
    assert service.query_batch(mixed_queries(rng, 6))
    assert service.metrics.counter("parallel_tasks").value > 0
    service.close()
    assert service.pool is None
    with pytest.raises(RuntimeError):
        pool.query_shards([])


# -- cleanup: nothing outlives close ------------------------------------------


def test_close_unlinks_every_segment():
    shared = SharedMotionColumns()
    rng = random.Random(59)
    for oid in range(100):  # force a couple of growths
        shared.upsert(oid, random_motion(rng))
    names = set()
    assert shared.segment_count >= 2
    names.update(
        name for name in live_segment_names()
        if name.startswith("repro-cols-")
    )
    assert names
    shared.close()
    shared.close()  # idempotent
    left = set(live_segment_names())
    assert not (names & left)
    if os.path.isdir("/dev/shm"):
        on_disk = set(os.listdir("/dev/shm"))
        assert not (names & on_disk)


def test_service_close_releases_segments_and_workers():
    service = FaultTolerantMotionService(
        Y_MAX, V_MIN, V_MAX, shards=4, workers=2
    )
    _populate(service, 13, n=80)
    rng = random.Random(13)
    service.query_batch(mixed_queries(rng, 6))
    pids = service.pool.worker_pids()
    before = set(live_segment_names())
    assert before  # every shard mirror lives in shared memory
    service.close()
    after = set(live_segment_names())
    assert not (before & after)
    deadline = 50
    for pid in pids:
        for _ in range(deadline):
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                break
            import time as _time

            _time.sleep(0.05)
        else:
            pytest.fail(f"worker {pid} survived service.close()")
