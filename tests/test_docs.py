"""Documentation guards: the shipped snippets must actually run."""

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent


def python_blocks(path):
    text = (ROOT / path).read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_quickstart_runs():
    blocks = python_blocks("README.md")
    assert blocks, "README lost its quickstart block"
    namespace = {}
    exec(blocks[0], namespace)  # noqa: S102 - executing our own docs
    index = namespace["index"]
    assert len(index) == 2


def test_api_doc_mentions_every_public_index():
    import repro

    api = (ROOT / "docs" / "api.md").read_text()
    for name in repro.__all__:
        if name.endswith("Index") or name in ("MotionDatabase",):
            assert name in api, f"{name} missing from docs/api.md"


def test_paper_map_covers_every_section():
    text = (ROOT / "docs" / "paper_map.md").read_text()
    for section in ("§2", "§3.1", "§3.2", "§3.3", "§3.4", "§3.5.1",
                    "§3.5.2", "§3.6", "§4.1", "§4.2", "§5", "§7"):
        assert section in text, f"{section} missing from the paper map"


def test_experiments_covers_every_figure():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for figure in ("Figure 6", "Figure 7", "Figure 8", "Figure 9"):
        assert figure in text


def test_design_lists_every_bench_file():
    import os

    design = (ROOT / "DESIGN.md").read_text()
    bench_dir = ROOT / "benchmarks"
    missing = []
    for name in os.listdir(bench_dir):
        if name.startswith("test_") and name.endswith(".py"):
            stem = name
            if stem not in design and stem.replace("test_", "") not in design:
                missing.append(name)
    # Every figure bench must be in DESIGN's experiment index; ablations
    # may be grouped, so only hard-require the figures.
    for fig in ("test_fig6_query_large.py", "test_fig7_query_small.py",
                "test_fig8_space.py", "test_fig9_update.py"):
        assert fig not in missing, f"{fig} absent from DESIGN.md"
