"""CheckpointStore tests: atomic installs, manifest recovery, crashes."""

import json
import os

import pytest

from repro.errors import SimulatedCrashError
from repro.service.faults import CrashPointInjector, flip_bit, truncate_file
from repro.storage import (
    CHECKPOINT_CRASH_POINTS,
    CheckpointStore,
    read_framed_file,
)

pytestmark = pytest.mark.durability


def listing(directory):
    return sorted(os.listdir(directory))


def test_fresh_store_writes_manifest_only(tmp_path):
    store = CheckpointStore(str(tmp_path))
    assert store.seq == 0
    assert store.read() is None
    assert listing(tmp_path) == ["MANIFEST"]
    assert store.segment_name == "wal-00000000.log"


def test_write_install_and_reopen(tmp_path):
    store = CheckpointStore(str(tmp_path))
    segment = store.write({"seq": 5, "payload": "alpha"})
    assert segment.endswith("wal-00000001.log")
    assert store.read() == {"seq": 5, "payload": "alpha"}
    reopened = CheckpointStore(str(tmp_path))
    assert reopened.seq == 1
    assert reopened.read() == {"seq": 5, "payload": "alpha"}
    assert "ckpt-00000001.ckpt" in listing(tmp_path)


def test_write_garbage_collects_superseded_files(tmp_path):
    store = CheckpointStore(str(tmp_path))
    store.write({"gen": 1})
    store.write({"gen": 2})
    names = listing(tmp_path)
    assert "ckpt-00000001.ckpt" not in names
    assert "wal-00000001.log" not in names
    assert "ckpt-00000002.ckpt" in names
    assert "wal-00000002.log" in names


def test_corrupt_manifest_falls_back_to_directory_scan(tmp_path):
    events = []
    store = CheckpointStore(str(tmp_path))
    store.write({"gen": 1})
    store.write({"gen": 2})
    manifest = tmp_path / "MANIFEST"
    flip_bit(str(manifest), byte_offset=10)
    reopened = CheckpointStore(
        str(tmp_path), on_event=lambda n, a: events.append((n, a))
    )
    assert reopened.seq == 2
    assert reopened.read() == {"gen": 2}
    assert ("manifest_fallback", 1) in events
    # The fallback rewrote a valid manifest.
    assert read_framed_file(str(manifest)) is not None


def test_corrupt_checkpoint_falls_back_to_previous(tmp_path):
    """Bit rot in the active checkpoint: recovery scans for the best
    *valid* one.  The superseded files are gone, so a fully-corrupt
    newest checkpoint degrades to an empty (but functional) store."""
    store = CheckpointStore(str(tmp_path))
    store.write({"gen": 1})
    flip_bit(str(tmp_path / "ckpt-00000001.ckpt"), byte_offset=12, bit=3)
    reopened = CheckpointStore(str(tmp_path))
    assert reopened.read() is None
    assert reopened.write({"gen": 2}).endswith(".log")
    assert CheckpointStore(str(tmp_path)).read() == {"gen": 2}


def test_truncated_checkpoint_is_rejected(tmp_path):
    store = CheckpointStore(str(tmp_path))
    store.write({"gen": 1})
    path = str(tmp_path / "ckpt-00000001.ckpt")
    truncate_file(path, os.path.getsize(path) - 3)
    assert read_framed_file(path) is None
    assert CheckpointStore(str(tmp_path)).read() is None


@pytest.mark.parametrize("point", CHECKPOINT_CRASH_POINTS)
@pytest.mark.parametrize("drop_unsynced", [False, True])
def test_crash_at_every_checkpoint_boundary(tmp_path, point, drop_unsynced):
    """Kill the checkpoint protocol at each boundary; reopening must
    yield either the old or the new checkpoint — never a torn one —
    and the post-manifest boundaries must yield the *new* one."""
    store = CheckpointStore(str(tmp_path))
    store.write({"gen": "old"})
    injector = CrashPointInjector().arm(point, drop_unsynced=drop_unsynced)
    crashing = CheckpointStore(str(tmp_path), crash_hook=injector)
    with pytest.raises(SimulatedCrashError):
        crashing.write({"gen": "new"})
    with pytest.raises(ValueError):
        crashing.write({"gen": "dead store"})
    recovered = CheckpointStore(str(tmp_path))
    payload = recovered.read()
    assert payload in ({"gen": "old"}, {"gen": "new"})
    if point == "checkpoint.post_manifest":
        # The manifest replace committed the new checkpoint.
        assert payload == {"gen": "new"}
        assert recovered.seq == 2
    else:
        # Before the manifest replace the old pair stays active (the
        # old log segment still holds the full tail, so the recovered
        # state is equivalent); the orphaned new files are collected.
        assert payload == {"gen": "old"}
        assert "ckpt-00000002.ckpt" not in listing(tmp_path)
    # Whatever survived, the store keeps working.
    recovered.write({"gen": "after"})
    assert CheckpointStore(str(tmp_path)).read() == {"gen": "after"}


def test_manifest_pointing_at_lost_checkpoint_rescans(tmp_path):
    """A manifest naming a missing checkpoint file (lost to bit rot +
    deletion) must not crash the open — scan finds what's left."""
    store = CheckpointStore(str(tmp_path))
    store.write({"gen": 1})
    os.remove(tmp_path / "ckpt-00000001.ckpt")
    reopened = CheckpointStore(str(tmp_path))
    assert reopened.read() is None


def test_manifest_is_single_framed_json_blob(tmp_path):
    store = CheckpointStore(str(tmp_path))
    store.write({"gen": 1})
    payload = read_framed_file(str(tmp_path / "MANIFEST"))
    manifest = json.loads(payload.decode("utf-8"))
    assert manifest == {
        "seq": 1,
        "checkpoint": "ckpt-00000001.ckpt",
        "log": "wal-00000001.log",
    }
