"""Tests for the benchmark harness (sweeps, tables, method registry)."""

import pytest

from repro.bench import Table, default_methods, run_sweep
from repro.workloads import SMALL_QUERIES


class TestTable:
    def test_render_alignment(self):
        table = Table(headers=["N", "method-a"])
        table.rows = [[1000, 12.5], [20000, 3.25]]
        rendered = table.render("My title")
        lines = rendered.splitlines()
        assert lines[0] == "My title"
        assert "method-a" in lines[1]
        assert len({len(line) for line in lines[1:]}) == 1  # aligned

    def test_column(self):
        table = Table(headers=["N", "x"])
        table.rows = [[1, 10], [2, 20]]
        assert table.column("x") == [10, 20]
        with pytest.raises(ValueError):
            table.column("missing")

    def test_csv_roundtrip(self, tmp_path):
        table = Table(headers=["N", "x"])
        table.rows = [[1, 10.5], [2, 20.25]]
        assert table.to_csv().splitlines() == ["N,x", "1,10.5", "2,20.25"]
        path = tmp_path / "out.csv"
        table.save_csv(str(path))
        assert path.read_text().splitlines()[0] == "N,x"


class TestDefaultMethods:
    def test_paper_set(self):
        methods = default_methods()
        assert set(methods) == {
            "segment-rstar",
            "dual-kdtree",
            "forest-c4",
            "forest-c6",
            "forest-c8",
        }

    def test_optional_baseline(self):
        methods = default_methods(forest_cs=(2,), include_segment_baseline=False)
        assert set(methods) == {"dual-kdtree", "forest-c2"}


class TestRunSweep:
    def test_small_sweep_collects_all_metrics(self):
        methods = default_methods(
            forest_cs=(2,), include_segment_baseline=False
        )
        sweep = run_sweep(
            methods,
            sizes=[100, 200],
            query_class=SMALL_QUERIES,
            ticks=10,
            query_instants=2,
            queries_per_instant=3,
            update_rate=0.01,
            seed=5,
            validate=True,
        )
        assert sweep.methods == ["dual-kdtree", "forest-c2"]
        assert sweep.sizes == [100, 200]
        for method in sweep.methods:
            for n in sweep.sizes:
                result = sweep.get(method, n)
                assert result.mismatches == 0  # exactness under the sweep
                assert len(result.query_ios) == 6
                assert result.space_pages > 0
        table = sweep.metric_table("avg_query_io")
        assert table.headers == ["N", "dual-kdtree", "forest-c2"]
        assert [row[0] for row in table.rows] == [100, 200]

    def test_sweeps_are_reproducible(self):
        methods = default_methods(
            forest_cs=(2,), include_segment_baseline=False
        )
        kwargs = dict(
            sizes=[120],
            query_class=SMALL_QUERIES,
            ticks=8,
            query_instants=2,
            queries_per_instant=3,
            update_rate=0.01,
            seed=9,
        )
        a = run_sweep(methods, **kwargs)
        b = run_sweep(methods, **kwargs)
        for key in a.results:
            assert a.results[key].query_ios == b.results[key].query_ios
            assert a.results[key].update_ios == b.results[key].update_ios


class TestChart:
    def test_render_chart_scales_bars(self):
        table = Table(headers=["N", "a", "b"])
        table.rows = [[100, 10.0, 20.0], [200, 40.0, 5.0]]
        chart = table.render_chart("Figure X", width=40)
        lines = chart.splitlines()
        assert lines[0] == "Figure X"
        bars = {
            line.split("|")[0].strip(): line.split("|")[1]
            for line in lines[1:]
            if "|" in line
        }
        # The max value (40.0) gets the full width.
        assert bars["200 a"].count("#") == 40
        assert bars["100 a"].count("#") == 10
        # Every bar has at least one mark.
        assert all(bar.count("#") >= 1 for bar in bars.values())

    def test_render_chart_empty(self):
        table = Table(headers=["N", "a"])
        assert table.render_chart() == ""

    def test_render_chart_non_numeric_cells(self):
        """Regression: non-numeric cells used to raise ValueError;
        they now render without a bar while numeric cells still chart."""
        table = Table(headers=["N", "io", "note"])
        table.rows = [[100, 10.0, "n/a"], [200, 40.0, None]]
        chart = table.render_chart("Mixed", width=40)
        lines = chart.splitlines()
        assert lines[0] == "Mixed"
        bars = {
            line.split("|")[0].strip(): line.split("|", 1)[1]
            for line in lines[1:]
            if "|" in line
        }
        assert bars["200 io"].count("#") == 40  # numeric max still scales
        assert bars["100 note"].strip() == "n/a"  # verbatim, no bar
        assert bars["200 note"].strip() == "None"
        assert "#" not in bars["100 note"] and "#" not in bars["200 note"]

    def test_render_chart_nan_and_inf_skipped(self):
        table = Table(headers=["N", "a"])
        table.rows = [[1, float("nan")], [2, float("inf")], [3, 5.0]]
        chart = table.render_chart(width=10)
        bars = {
            line.split("|")[0].strip(): line.split("|", 1)[1]
            for line in chart.splitlines()
            if "|" in line
        }
        assert bars["3 a"].count("#") == 10  # 5.0 is the only scalable max
        assert "#" not in bars["1 a"] and "#" not in bars["2 a"]

    def test_csv_roundtrip_with_mixed_cells(self, tmp_path):
        """to_csv must survive the same non-numeric cells the chart
        does, and parse back to the original strings."""
        import csv

        table = Table(headers=["N", "io", "note"])
        table.rows = [[100, 10.5, "n/a"], [200, 40.0, "slow, but ok"]]
        path = tmp_path / "mixed.csv"
        table.save_csv(str(path))
        with open(path, newline="") as handle:
            parsed = list(csv.reader(handle))
        assert parsed[0] == ["N", "io", "note"]
        assert parsed[1] == ["100", "10.5", "n/a"]
        assert parsed[2] == ["200", "40.0", "slow, but ok"]  # comma quoted
