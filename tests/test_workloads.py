"""Tests for the workload generator and scenario driver."""

import random

import pytest

from repro.core import brute_force_1d
from repro.indexes import DualKDTreeIndex, HoughYForestIndex, NaiveScanIndex
from repro.workloads import (
    LARGE_QUERIES,
    SMALL_QUERIES,
    Scenario,
    WorkloadConfig,
    WorkloadGenerator,
    paper_model,
)


class TestGenerator:
    def test_paper_model(self):
        model = paper_model()
        assert model.terrain.y_max == 1000.0
        assert model.v_min == 0.16
        assert model.v_max == 1.66

    def test_initial_population(self):
        gen = WorkloadGenerator(seed=1)
        objects = gen.initial_population(200)
        assert len(objects) == 200
        assert len({o.oid for o in objects}) == 200
        for obj in objects:
            gen.model.validate(obj.motion)

    def test_reproducible_from_seed(self):
        a = WorkloadGenerator(seed=7).initial_population(50)
        b = WorkloadGenerator(seed=7).initial_population(50)
        assert a == b
        c = WorkloadGenerator(seed=8).initial_population(50)
        assert a != c

    def test_updates_keep_model_valid(self):
        gen = WorkloadGenerator(seed=2)
        obj = gen.initial_population(1)[0]
        for now in (5.0, 10.0, 50.0):
            obj = gen.random_update(obj, now)
            gen.model.validate(obj.motion)
            assert obj.motion.t0 == now

    def test_reflect_flips_direction(self):
        gen = WorkloadGenerator(seed=3)
        obj = gen.initial_population(1)[0]
        reflected = gen.reflect(obj, now=10.0)
        assert reflected.motion.v == -obj.motion.v

    def test_query_classes(self):
        gen = WorkloadGenerator(seed=4)
        for qclass in (LARGE_QUERIES, SMALL_QUERIES):
            for _ in range(100):
                q = gen.query(qclass, now=50.0)
                assert 0 <= q.y1 <= q.y2 <= 1000.0
                assert q.y2 - q.y1 <= qclass.yq_max
                assert 50.0 <= q.t1 <= q.t2 <= 50.0 + qclass.tw_max

    def test_selectivities_are_ordered(self):
        """Large queries must select roughly 10x what small ones do."""
        gen = WorkloadGenerator(seed=5)
        objects = gen.initial_population(2000)
        sizes = {}
        for qclass in (LARGE_QUERIES, SMALL_QUERIES):
            total = sum(
                len(brute_force_1d(objects, gen.query(qclass, 50.0)))
                for _ in range(50)
            )
            sizes[qclass.name] = total / 50 / len(objects)
        assert sizes["10%"] > 3 * sizes["1%"]
        assert 0.01 < sizes["10%"] < 0.30
        assert sizes["1%"] < 0.05


class TestWorkloadConfig:
    def test_scaled(self):
        cfg = WorkloadConfig(n=10000, updates_per_tick=200)
        small = cfg.scaled(0.01)
        assert small.n == 100
        assert small.updates_per_tick == 2
        assert small.ticks == cfg.ticks


class TestScenario:
    CFG = WorkloadConfig(
        n=150,
        updates_per_tick=3,
        ticks=30,
        query_instants=3,
        queries_per_instant=5,
        seed=11,
    )

    @pytest.mark.parametrize(
        "factory",
        [
            lambda m: NaiveScanIndex(m, page_capacity=16),
            lambda m: DualKDTreeIndex(m, leaf_capacity=16),
            lambda m: HoughYForestIndex(m, c=4, leaf_capacity=16),
        ],
        ids=["naive", "kdtree", "forest"],
    )
    def test_run_validates_against_brute_force(self, factory):
        scenario = Scenario(self.CFG)
        index = factory(scenario.model)
        result = scenario.run(index, LARGE_QUERIES, validate=True)
        assert result.mismatches == 0
        assert len(result.query_ios) == 15
        assert result.space_pages > 0
        assert result.update_ios  # reflections + random updates happened
        assert result.avg_query_io > 0
        assert result.avg_update_io > 0
        assert result.avg_answer_size >= 0

    def test_same_seed_same_workload(self):
        r1 = Scenario(self.CFG).run(
            NaiveScanIndex(paper_model(), page_capacity=16), SMALL_QUERIES
        )
        r2 = Scenario(self.CFG).run(
            NaiveScanIndex(paper_model(), page_capacity=16), SMALL_QUERIES
        )
        assert r1.query_ios == r2.query_ios
        assert r1.update_ios == r2.update_ios
        assert r1.query_answer_sizes == r2.query_answer_sizes


class TestDistributionPlumbing:
    def test_generator_accepts_distribution(self):
        from repro.workloads.distributions import GaussianClusters

        gen = WorkloadGenerator(seed=9)
        dist = GaussianClusters(centers=(500.0,), sigma=10.0)
        objects = gen.initial_population(200, distribution=dist)
        assert len(objects) == 200
        near = sum(1 for o in objects if 450 <= o.motion.y0 <= 550)
        assert near > 180
        for obj in objects:
            gen.model.validate(obj.motion)


class TestOpenSystemChurn:
    def test_arrivals_and_departures(self):
        from repro.indexes import DualKDTreeIndex

        cfg = WorkloadConfig(
            n=100,
            updates_per_tick=2,
            ticks=20,
            query_instants=2,
            queries_per_instant=4,
            arrivals_per_tick=3,
            departures_per_tick=2,
            seed=33,
        )
        scenario = Scenario(cfg)
        index = DualKDTreeIndex(scenario.model, leaf_capacity=16)
        result = scenario.run(index, SMALL_QUERIES, validate=True)
        assert result.mismatches == 0
        # Net growth: +1 object per tick.
        assert len(index) == 100 + 20 * (3 - 2)

    def test_scaled_preserves_churn(self):
        cfg = WorkloadConfig(n=1000, arrivals_per_tick=10,
                             departures_per_tick=10)
        small = cfg.scaled(0.1)
        assert small.arrivals_per_tick == 1
        assert small.departures_per_tick == 1
