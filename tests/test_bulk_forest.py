"""Tests for bulk construction of the Hough-Y forest."""

import random

import pytest

from repro.core import LinearMotion1D, MobileObject1D, brute_force_1d
from repro.errors import DuplicateObjectError, InvalidMotionError
from repro.indexes import HoughYForestIndex

from .helpers import PAPER_MODEL, random_objects, random_queries


class TestBulkBuild:
    def test_bulk_equals_incremental(self):
        rng = random.Random(3)
        objects = random_objects(rng, 400)
        bulk = HoughYForestIndex.bulk_build(
            PAPER_MODEL, objects, c=3, leaf_capacity=16
        )
        incremental = HoughYForestIndex(PAPER_MODEL, c=3, leaf_capacity=16)
        for obj in objects:
            incremental.insert(obj)
        assert len(bulk) == len(incremental) == 400
        for query in random_queries(rng, 25):
            expected = brute_force_1d(objects, query)
            assert bulk.query(query) == expected
            assert incremental.query(query) == expected

    def test_bulk_then_mutate(self):
        rng = random.Random(5)
        objects = {o.oid: o for o in random_objects(rng, 200)}
        bulk = HoughYForestIndex.bulk_build(
            PAPER_MODEL, list(objects.values()), c=2, leaf_capacity=8
        )
        for oid in list(objects)[::3]:
            bulk.delete(oid)
            del objects[oid]
        for oid in range(1000, 1040):
            obj = MobileObject1D(oid, LinearMotion1D(500.0, 1.0, 120.0))
            bulk.insert(obj)
            objects[oid] = obj
        for query in random_queries(rng, 15, t_now=130.0):
            assert bulk.query(query) == brute_force_1d(
                objects.values(), query
            )

    def test_bulk_build_io_beats_incremental(self):
        rng = random.Random(7)
        objects = random_objects(rng, 600)
        bulk = HoughYForestIndex.bulk_build(
            PAPER_MODEL, objects, c=4, leaf_capacity=16
        )
        bulk_io = sum(d.stats.total for d in bulk.disks)
        incremental = HoughYForestIndex(PAPER_MODEL, c=4, leaf_capacity=16)
        for obj in objects:
            incremental.insert(obj)
        incremental_io = sum(d.stats.total for d in incremental.disks)
        assert bulk_io < incremental_io / 2

    def test_validation(self):
        rng = random.Random(9)
        objects = random_objects(rng, 5)
        with pytest.raises(DuplicateObjectError):
            HoughYForestIndex.bulk_build(
                PAPER_MODEL, objects + [objects[0]], c=2
            )
        with pytest.raises(ValueError):
            HoughYForestIndex.bulk_build(PAPER_MODEL, objects, c=0)
        with pytest.raises(ValueError):
            HoughYForestIndex.bulk_build(
                PAPER_MODEL, objects, wide_strategy="nope"
            )
        bad = [MobileObject1D(99, LinearMotion1D(0.0, 50.0))]
        with pytest.raises(InvalidMotionError):
            HoughYForestIndex.bulk_build(PAPER_MODEL, bad)

    def test_empty_bulk(self):
        bulk = HoughYForestIndex.bulk_build(PAPER_MODEL, [], c=2)
        assert len(bulk) == 0
        from repro.core import MORQuery1D

        assert bulk.query(MORQuery1D(0, 1000, 0, 100)) == set()
