"""Tests for the planar workload generator and scenario driver."""

import pytest

from repro.core import Terrain2D
from repro.twod import PlanarDecompositionIndex, PlanarKDTreeIndex, PlanarModel
from repro.workloads.planar import (
    LARGE_PLANAR_QUERIES,
    SMALL_PLANAR_QUERIES,
    PlanarScenario,
    PlanarWorkloadGenerator,
)


class TestPlanarGenerator:
    def test_population_valid(self):
        gen = PlanarWorkloadGenerator(seed=1)
        for obj in gen.initial_population(100):
            gen.model.validate(obj.motion)

    def test_reflect_flips_only_border_components(self):
        gen = PlanarWorkloadGenerator(seed=2)
        from repro.core import LinearMotion2D, MobileObject2D

        # Heading off the right border: vx flips, vy kept.
        obj = MobileObject2D(1, LinearMotion2D(999.0, 500.0, 1.0, 0.5, 0.0))
        bounced = gen.reflect(obj, now=1.0)
        assert bounced.motion.vx == -1.0
        assert bounced.motion.vy == 0.5
        # Corner case: both flip.
        corner = MobileObject2D(2, LinearMotion2D(999.5, 999.5, 1.0, 1.0, 0.0))
        bounced = gen.reflect(corner, now=1.0)
        assert bounced.motion.vx == -1.0
        assert bounced.motion.vy == -1.0

    def test_queries_inside_terrain(self):
        gen = PlanarWorkloadGenerator(seed=3)
        for qclass in (LARGE_PLANAR_QUERIES, SMALL_PLANAR_QUERIES):
            for _ in range(50):
                q = gen.query(qclass, now=10.0)
                assert 0 <= q.x1 <= q.x2 <= 1000
                assert 0 <= q.y1 <= q.y2 <= 1000
                assert 10.0 <= q.t1 <= q.t2 <= 10.0 + qclass.tw_max

    def test_reproducibility(self):
        a = PlanarWorkloadGenerator(seed=5).initial_population(30)
        b = PlanarWorkloadGenerator(seed=5).initial_population(30)
        assert a == b


class TestPlanarScenario:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda m: PlanarKDTreeIndex(m, leaf_capacity=16),
            lambda m: PlanarDecompositionIndex(m, leaf_capacity=16),
        ],
        ids=["kdtree-4d", "decomposition"],
    )
    def test_scenario_validates(self, factory):
        scenario = PlanarScenario(
            n=120,
            ticks=12,
            updates_per_tick=3,
            queries_per_instant=4,
            query_instants=2,
            seed=11,
        )
        index = factory(scenario.generator.model)
        result = scenario.run(index, LARGE_PLANAR_QUERIES, validate=True)
        assert result.mismatches == 0
        assert len(result.query_ios) == 8
        assert result.update_count > 0
        assert result.space_pages > 0
        assert result.avg_query_io > 0

    def test_same_seed_reproducible(self):
        def run():
            scenario = PlanarScenario(n=60, ticks=8, seed=21)
            index = PlanarKDTreeIndex(
                scenario.generator.model, leaf_capacity=16
            )
            return scenario.run(index, SMALL_PLANAR_QUERIES)

        assert run().query_ios == run().query_ios
