"""Tests for crossing enumeration, the persistent order index and MOR1."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LinearMotion1D,
    MOR1Query,
    MobileObject1D,
    brute_force_mor1,
)
from repro.errors import IndexExpiredError, InvalidQueryError
from repro.io_sim import DiskSimulator
from repro.kinetic import (
    MOR1Index,
    PersistentOrderIndex,
    StaggeredMOR1Index,
    count_crossings,
    crossing_time,
    find_crossings,
    order_at,
)

from .helpers import random_objects


def brute_crossings(objects, t_start, t_end):
    """All pairs whose order differs between the window endpoints."""
    result = set()
    for i, a in enumerate(objects):
        for b in objects[i + 1 :]:
            if a.motion.v == b.motion.v:
                continue
            t = crossing_time(a, b)
            if t_start < t <= t_end:
                result.add(frozenset((a.oid, b.oid)))
    return result


class TestCrossings:
    def test_crossing_time(self):
        a = MobileObject1D(1, LinearMotion1D(0.0, 1.0, 0.0))
        b = MobileObject1D(2, LinearMotion1D(10.0, 0.5, 0.0))
        assert crossing_time(a, b) == 20.0
        with pytest.raises(InvalidQueryError):
            crossing_time(a, MobileObject1D(3, LinearMotion1D(5.0, 1.0)))

    def test_order_at(self):
        objects = [
            MobileObject1D(1, LinearMotion1D(0.0, 2.0)),
            MobileObject1D(2, LinearMotion1D(10.0, 0.2)),
        ]
        assert order_at(objects, 0.0) == [1, 2]
        assert order_at(objects, 10.0) == [2, 1]

    def test_find_crossings_simple(self):
        objects = [
            MobileObject1D(1, LinearMotion1D(0.0, 2.0)),
            MobileObject1D(2, LinearMotion1D(10.0, 0.2)),
            MobileObject1D(3, LinearMotion1D(100.0, 0.2)),
        ]
        crossings = find_crossings(objects, 0.0, 20.0)
        assert len(crossings) == 1
        event = crossings[0]
        assert {event.a, event.b} == {1, 2}
        assert event.time == pytest.approx(10 / 1.8)

    def test_find_crossings_matches_brute_force(self):
        rng = random.Random(61)
        objects = random_objects(rng, 80, t0_max=0.0)
        t_start, t_end = 0.0, 300.0
        events = find_crossings(objects, t_start, t_end)
        found = {frozenset((e.a, e.b)) for e in events}
        assert found == brute_crossings(objects, t_start, t_end)
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(t_start < t <= t_end for t in times)
        assert count_crossings(objects, t_start, t_end) == len(events)

    def test_window_validation(self):
        with pytest.raises(InvalidQueryError):
            find_crossings([], 10.0, 5.0)

    def test_empty_and_parallel(self):
        assert find_crossings([], 0, 10) == []
        objects = [
            MobileObject1D(i, LinearMotion1D(float(i * 10), 1.0))
            for i in range(5)
        ]
        assert find_crossings(objects, 0, 100) == []


class TestPersistentOrderIndex:
    def test_initial_order(self):
        disk = DiskSimulator()
        index = PersistentOrderIndex(disk, ["a", "b", "c", "d"], 0.0)
        assert index.order_at(0.0) == ["a", "b", "c", "d"]

    def test_swap_history(self):
        index = PersistentOrderIndex(DiskSimulator(), list("abcd"), 0.0)
        index.apply_swap(1, 5.0)  # b <-> c
        index.apply_swap(0, 7.0)  # a <-> c
        assert index.order_at(0.0) == list("abcd")
        assert index.order_at(5.0) == list("acbd")
        assert index.order_at(6.9) == list("acbd")
        assert index.order_at(7.0) == list("cabd")
        assert index.order_at(100.0) == list("cabd")

    def test_validation(self):
        with pytest.raises(InvalidQueryError):
            PersistentOrderIndex(DiskSimulator(), [], 0.0)
        with pytest.raises(ValueError):
            PersistentOrderIndex(DiskSimulator(), ["a"], 0.0, page_capacity=2)
        index = PersistentOrderIndex(DiskSimulator(), list("ab"), 0.0)
        with pytest.raises(InvalidQueryError):
            index.apply_swap(5, 1.0)
        index.apply_swap(0, 3.0)
        with pytest.raises(InvalidQueryError):
            index.apply_swap(0, 1.0)  # going back in time
        with pytest.raises(InvalidQueryError):
            index.order_at(-1.0)  # before the window

    def test_versioning_under_many_swaps(self):
        """Small pages force version chains; history must stay intact."""
        rng = random.Random(71)
        n = 16
        index = PersistentOrderIndex(
            DiskSimulator(), list(range(n)), 0.0, page_capacity=4
        )
        shadow = list(range(n))
        snapshots = [(0.0, list(shadow))]
        t = 0.0
        for _ in range(300):
            t += 1.0
            pos = rng.randrange(n - 1)
            index.apply_swap(pos, t)
            shadow[pos], shadow[pos + 1] = shadow[pos + 1], shadow[pos]
            snapshots.append((t, list(shadow)))
        # Every historical version must be reconstructible.
        for when, expected in snapshots[:: max(1, len(snapshots) // 50)]:
            assert index.order_at(when) == expected
        # Times between events resolve to the preceding version.
        assert index.order_at(0.5) == snapshots[0][1]
        assert index.order_at(1.5) == snapshots[1][1]

    def test_space_grows_linearly_with_swaps(self):
        disk = DiskSimulator()
        n = 32
        index = PersistentOrderIndex(disk, list(range(n)), 0.0, page_capacity=8)
        base = disk.pages_in_use
        rng = random.Random(73)
        t = 0.0
        for _ in range(400):
            t += 1.0
            index.apply_swap(rng.randrange(n - 1), t)
        growth = disk.pages_in_use - base
        # O(m / B) new pages: each page absorbs ~B/2 log records, and each
        # swap writes two records plus occasional cascades.
        assert growth < 400 * 2

    def test_range_query_routing(self):
        """range_query must avoid touching every leaf."""
        n = 256
        disk = DiskSimulator(buffer_pages=0)
        occupants = list(range(n))
        index = PersistentOrderIndex(disk, occupants, 0.0, page_capacity=16)

        def loc(oid, t):
            return float(oid)

        before = disk.stats.snapshot()
        hits = index.range_query(0.0, 100.0, 110.0, loc)
        delta = disk.stats.snapshot() - before
        assert hits == list(range(100, 111))
        assert delta.reads < 12  # root + boundary paths + 2-3 leaves


class TestMOR1Index:
    def make_population(self, seed=81, n=120):
        rng = random.Random(seed)
        return random_objects(rng, n, t0_max=0.0)

    def test_queries_match_brute_force(self):
        objects = self.make_population()
        index = MOR1Index(objects, t_start=0.0, window=200.0)
        rng = random.Random(5)
        for _ in range(40):
            t = rng.uniform(0, 200)
            y1 = rng.uniform(0, 900)
            query = MOR1Query(y1, y1 + rng.uniform(0, 200), t)
            assert index.query(query) == brute_force_mor1(objects, query)

    def test_rejects_out_of_window(self):
        objects = self.make_population(n=10)
        index = MOR1Index(objects, t_start=0.0, window=50.0)
        with pytest.raises(IndexExpiredError):
            index.query(MOR1Query(0, 10, 60.0))
        with pytest.raises(IndexExpiredError):
            index.query(MOR1Query(0, 10, -1.0))
        with pytest.raises(IndexExpiredError):
            index.order_snapshot(99.0)

    def test_validation(self):
        objects = self.make_population(n=4)
        with pytest.raises(InvalidQueryError):
            MOR1Index(objects, 0.0, window=-1.0)
        with pytest.raises(InvalidQueryError):
            MOR1Index([], 0.0, window=10.0)

    def test_crossing_count_exposed(self):
        objects = self.make_population(n=60)
        index = MOR1Index(objects, t_start=0.0, window=100.0)
        assert index.crossing_count == count_crossings(objects, 0.0, 100.0)
        assert index.pages_in_use > 0

    def test_order_snapshot_sorted_by_location(self):
        objects = self.make_population(n=40)
        index = MOR1Index(objects, t_start=0.0, window=150.0)
        motions = {obj.oid: obj.motion for obj in objects}
        for t in (0.0, 50.0, 149.9):
            snapshot = index.order_snapshot(t)
            locations = [motions[oid].position(t) for oid in snapshot]
            assert locations == sorted(locations)


class TestStaggeredMOR1:
    def test_lazy_window_construction(self):
        objects = random_objects(random.Random(91), 50, t0_max=0.0)
        staggered = StaggeredMOR1Index(objects, t0=0.0, window=100.0)
        assert staggered.built_windows == []
        rng = random.Random(6)
        for t in (10.0, 150.0, 320.0, 95.0):
            y1 = rng.uniform(0, 800)
            query = MOR1Query(y1, y1 + 150, t)
            assert staggered.query(query) == brute_force_mor1(objects, query)
        assert staggered.built_windows == [0, 1, 3]
        assert staggered.pages_in_use > 0

    def test_prebuild_next(self):
        objects = random_objects(random.Random(93), 30, t0_max=0.0)
        staggered = StaggeredMOR1Index(objects, t0=0.0, window=60.0)
        staggered.prebuild_next(now=10.0)
        assert staggered.built_windows == [1]

    def test_rejects_past(self):
        objects = random_objects(random.Random(95), 10, t0_max=0.0)
        staggered = StaggeredMOR1Index(objects, t0=100.0, window=50.0)
        with pytest.raises(InvalidQueryError):
            staggered.query(MOR1Query(0, 10, 50.0))
        with pytest.raises(InvalidQueryError):
            StaggeredMOR1Index(objects, t0=0.0, window=0.0)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    swaps=st.integers(min_value=0, max_value=120),
)
def test_property_persistent_history(seed, swaps):
    """Random swap histories reconstruct exactly at every version."""
    rng = random.Random(seed)
    n = rng.randint(2, 24)
    capacity = rng.choice([4, 6, 8, 16])
    index = PersistentOrderIndex(
        DiskSimulator(), list(range(n)), 0.0, page_capacity=capacity
    )
    shadow = list(range(n))
    history = [(0.0, list(shadow))]
    t = 0.0
    for _ in range(swaps):
        t += rng.uniform(0.0, 2.0)
        pos = rng.randrange(n - 1)
        index.apply_swap(pos, t)
        shadow[pos], shadow[pos + 1] = shadow[pos + 1], shadow[pos]
        history.append((t, list(shadow)))
    for when, expected in history:
        assert index.order_at(when) == expected


class TestSimultaneousCrossings:
    def test_three_lines_through_one_point(self):
        """Three trajectories meeting at a single (t, y) point produce
        three crossings at the same instant; the builder must order the
        adjacent swaps via its retry logic."""
        objects = [
            MobileObject1D(1, LinearMotion1D(0.0, 1.0, 0.0)),    # y = t
            MobileObject1D(2, LinearMotion1D(20.0, -1.0, 0.0)),  # y = 20 - t
            MobileObject1D(3, LinearMotion1D(5.0, 0.5, 0.0)),    # y = 5 + t/2
        ]
        index = MOR1Index(objects, t_start=0.0, window=20.0)
        assert index.crossing_count == 3
        # Before the meeting point the order is 1, 3, 2; after it 2, 3, 1.
        assert index.order_snapshot(5.0) == [1, 3, 2]
        assert index.order_snapshot(15.0) == [2, 3, 1]
        # Queries around the meeting point stay exact.
        for t in (9.0, 10.0, 11.0):
            query = MOR1Query(8.0, 12.0, t)
            assert index.query(query) == brute_force_mor1(objects, query)

    def test_four_lines_through_one_point(self):
        objects = [
            MobileObject1D(1, LinearMotion1D(0.0, 1.0, 0.0)),
            MobileObject1D(2, LinearMotion1D(20.0, -1.0, 0.0)),
            MobileObject1D(3, LinearMotion1D(5.0, 0.5, 0.0)),
            MobileObject1D(4, LinearMotion1D(15.0, -0.5, 0.0)),
        ]
        index = MOR1Index(objects, t_start=0.0, window=20.0)
        assert index.crossing_count == 6
        assert index.order_snapshot(19.9) == [2, 4, 3, 1]
