"""Golden determinism lock: exact I/O counts of a pinned tiny sweep.

Every structure in the library is deterministic given the workload
seed, so the exact page-access counts of a pinned configuration form a
regression fingerprint: any change to split policies, buffering or
accounting shows up here immediately.  If a change is *intentional*,
re-pin the constants (they are asserted as exact totals, with the
generating code right here).
"""

from repro.bench import run_sweep
from repro.indexes import DualKDTreeIndex, HoughYForestIndex
from repro.workloads import SMALL_QUERIES

PINNED = dict(
    sizes=[300],
    query_class=SMALL_QUERIES,
    ticks=12,
    query_instants=2,
    queries_per_instant=5,
    update_rate=0.01,
    seed=12345,
)


def pinned_methods():
    return {
        "kdtree": lambda m: DualKDTreeIndex(m, leaf_capacity=16),
        "forest": lambda m: HoughYForestIndex(m, c=2, leaf_capacity=16),
    }


def test_pinned_sweep_fingerprint():
    sweep = run_sweep(pinned_methods(), **PINNED)
    kdtree = sweep.get("kdtree", 300)
    forest = sweep.get("forest", 300)
    # Exact totals: queries, updates and space for both methods.
    fingerprint = {
        "kdtree": (
            sum(kdtree.query_ios),
            sum(kdtree.update_ios),
            kdtree.space_pages,
            sum(kdtree.query_answer_sizes),
        ),
        "forest": (
            sum(forest.query_ios),
            sum(forest.update_ios),
            forest.space_pages,
            sum(forest.query_answer_sizes),
        ),
    }
    # To re-pin after an intentional change:
    #   python -c "from tests.test_golden_regression import *; \
    #              import pprint; pprint.pprint(current_fingerprint())"
    assert fingerprint == EXPECTED, fingerprint


def current_fingerprint():
    sweep = run_sweep(pinned_methods(), **PINNED)
    out = {}
    for name in ("kdtree", "forest"):
        result = sweep.get(name, 300)
        out[name] = (
            sum(result.query_ios),
            sum(result.update_ios),
            result.space_pages,
            sum(result.query_answer_sizes),
        )
    return out


#: (total query I/O, total update I/O, pages, total answers) per method.
EXPECTED = {
    "kdtree": (146, 148, 30, 30),
    "forest": (114, 1069, 110, 30),
}
