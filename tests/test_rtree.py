"""Tests for rectangle geometry and the R*-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConvexRegion, HalfPlane
from repro.errors import DuplicateObjectError, ObjectNotFoundError
from repro.io_sim import DiskSimulator
from repro.rtree import Rect, RStarTree, bounding_rect


class TestRect:
    def test_validation(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)

    def test_point_and_segment(self):
        p = Rect.point(3, 4)
        assert p.area == 0
        s = Rect.segment_mbr(5, 1, 2, 9)
        assert s == Rect(2, 1, 5, 9)

    def test_area_margin_center(self):
        r = Rect(0, 0, 4, 2)
        assert r.area == 8
        assert r.margin == 6
        assert r.center == (2, 1)

    def test_union_intersection(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 1, 3, 3)
        assert a.union(b) == Rect(0, 0, 3, 3)
        assert a.intersection_area(b) == 1.0
        assert a.intersects(b)
        assert not a.intersects(Rect(5, 5, 6, 6))
        # Touching edges count as intersecting (closed rectangles).
        assert a.intersects(Rect(2, 0, 3, 1))
        assert a.intersection_area(Rect(2, 0, 3, 1)) == 0.0

    def test_containment(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(1, 1, 2, 2))
        assert not outer.contains_rect(Rect(5, 5, 11, 6))
        assert outer.contains_point(10, 10)
        assert not outer.contains_point(10.1, 5)

    def test_enlargement(self):
        r = Rect(0, 0, 2, 2)
        assert r.enlargement(Rect(0, 0, 1, 1)) == 0.0
        assert r.enlargement(Rect(0, 0, 4, 2)) == 4.0

    def test_bounding_rect(self):
        rects = [Rect(0, 0, 1, 1), Rect(5, -2, 6, 0)]
        assert bounding_rect(rects) == Rect(0, -2, 6, 1)
        with pytest.raises(ValueError):
            bounding_rect([])


def random_rects(rng, n, span=1000.0, max_side=20.0):
    rects = []
    for _ in range(n):
        x = rng.uniform(0, span)
        y = rng.uniform(0, span)
        rects.append(
            Rect(x, y, x + rng.uniform(0, max_side), y + rng.uniform(0, max_side))
        )
    return rects


def make_tree(leaf_capacity=8, forced_reinsert=True, buffer_pages=4):
    disk = DiskSimulator(buffer_pages=buffer_pages)
    tree = RStarTree(
        disk, leaf_capacity, leaf_capacity, forced_reinsert=forced_reinsert
    )
    return tree, disk


class TestRStarTreeBasics:
    def test_empty(self):
        tree, _ = make_tree()
        assert len(tree) == 0
        assert tree.search_rect(Rect(0, 0, 1, 1)) == []
        tree.check_invariants()

    def test_insert_search_delete(self):
        tree, _ = make_tree()
        tree.insert(Rect.point(1, 1), "a")
        tree.insert(Rect.point(5, 5), "b")
        assert set(tree.search_rect(Rect(0, 0, 2, 2))) == {"a"}
        assert tree.rect_of("b") == Rect.point(5, 5)
        tree.delete("a")
        assert "a" not in tree
        assert tree.search_rect(Rect(0, 0, 10, 10)) == ["b"]

    def test_duplicate_rejected(self):
        tree, _ = make_tree()
        tree.insert(Rect.point(1, 1), "a")
        with pytest.raises(DuplicateObjectError):
            tree.insert(Rect.point(2, 2), "a")

    def test_delete_missing(self):
        tree, _ = make_tree()
        with pytest.raises(ObjectNotFoundError):
            tree.delete("ghost")
        with pytest.raises(ObjectNotFoundError):
            tree.rect_of("ghost")

    def test_capacity_validation(self):
        disk = DiskSimulator()
        with pytest.raises(ValueError):
            RStarTree(disk, leaf_capacity=2)


class TestRStarTreeBulk:
    @pytest.mark.parametrize("forced_reinsert", [True, False])
    def test_bulk_insert_queries_match_brute_force(self, forced_reinsert):
        tree, _ = make_tree(leaf_capacity=8, forced_reinsert=forced_reinsert)
        rng = random.Random(17)
        rects = random_rects(rng, 400)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        tree.check_invariants()
        assert tree.height >= 3
        for _ in range(40):
            q = random_rects(rng, 1, span=900, max_side=150)[0]
            expected = {i for i, r in enumerate(rects) if r.intersects(q)}
            assert set(tree.search_rect(q)) == expected

    def test_churn_with_deletions(self):
        tree, _ = make_tree(leaf_capacity=8)
        rng = random.Random(23)
        live = {}
        next_id = 0
        for step in range(1200):
            if live and rng.random() < 0.45:
                oid = rng.choice(list(live))
                tree.delete(oid)
                del live[oid]
            else:
                rect = random_rects(rng, 1)[0]
                tree.insert(rect, next_id)
                live[next_id] = rect
                next_id += 1
            if step % 200 == 0:
                tree.check_invariants()
        tree.check_invariants()
        assert len(tree) == len(live)
        q = Rect(100, 100, 400, 400)
        expected = {oid for oid, r in live.items() if r.intersects(q)}
        assert set(tree.search_rect(q)) == expected

    def test_delete_everything(self):
        tree, disk = make_tree(leaf_capacity=8)
        rng = random.Random(31)
        rects = random_rects(rng, 250)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        order = list(range(250))
        rng.shuffle(order)
        for i in order:
            tree.delete(i)
        assert len(tree) == 0
        assert tree.height == 1
        assert disk.pages_in_use == 1
        tree.check_invariants()


class TestLinearConstraintSearch:
    def make_wedge(self):
        # v in [0.5, 2], a + v >= 1, a - v <= 1 : a wedge like Prop. 1's.
        return ConvexRegion(
            (
                HalfPlane(-1, 0, -0.5),
                HalfPlane(1, 0, 2.0),
                HalfPlane(-1, -1, -1.0),
                HalfPlane(-1, 1, 1.0),
            )
        )

    def test_region_search_finds_all_contained_points(self):
        tree, _ = make_tree(leaf_capacity=8)
        rng = random.Random(5)
        wedge = self.make_wedge()
        points = [
            (rng.uniform(0, 3), rng.uniform(-3, 3)) for _ in range(500)
        ]
        for i, (v, a) in enumerate(points):
            tree.insert(Rect.point(v, a), i)
        candidates = {
            oid
            for rect, oid in tree.search_region(wedge)
            if wedge.contains(rect.lo_x, rect.lo_y)
        }
        expected = {i for i, (v, a) in enumerate(points) if wedge.contains(v, a)}
        assert candidates == expected

    def test_region_search_prunes(self):
        tree, disk = make_tree(leaf_capacity=8, buffer_pages=0)
        rng = random.Random(6)
        # All points far outside the wedge's velocity band.
        for i in range(400):
            tree.insert(Rect.point(rng.uniform(10, 20), rng.uniform(0, 1)), i)
        disk.clear_buffer()
        before = disk.stats.snapshot()
        assert tree.search_region(self.make_wedge()) == []
        delta = disk.stats.snapshot() - before
        assert delta.reads <= 1  # only the root is touched


class TestForcedReinsert:
    def test_reinsertion_happens_and_preserves_contents(self):
        tree, _ = make_tree(leaf_capacity=8, forced_reinsert=True)
        # Insert clustered points to force overflows.
        rng = random.Random(9)
        pts = [(rng.gauss(0, 1), rng.gauss(0, 1)) for _ in range(200)]
        for i, (x, y) in enumerate(pts):
            tree.insert(Rect.point(x, y), i)
        tree.check_invariants()
        assert len(tree.items()) == 200

    def test_reinsert_improves_or_matches_query_io(self):
        """R* forced reinsert should not make queries meaningfully worse."""
        rng = random.Random(13)
        rects = random_rects(rng, 600, span=1000, max_side=5)
        ios = {}
        for reinsert in (True, False):
            tree, disk = make_tree(leaf_capacity=8, forced_reinsert=reinsert)
            for i, rect in enumerate(rects):
                tree.insert(rect, i)
            disk.clear_buffer()
            before = disk.stats.snapshot()
            for k in range(20):
                tree.search_rect(Rect(k * 40, k * 40, k * 40 + 100, k * 40 + 100))
            ios[reinsert] = (disk.stats.snapshot() - before).reads
        assert ios[True] <= ios[False] * 1.5


@settings(max_examples=25, deadline=None)
@given(
    coords=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.floats(min_value=0, max_value=100, allow_nan=False),
        ),
        min_size=1,
        max_size=120,
    ),
    query=st.tuples(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.floats(min_value=0, max_value=50, allow_nan=False),
        st.floats(min_value=0, max_value=50, allow_nan=False),
    ),
)
def test_property_window_query_matches_brute_force(coords, query):
    tree, _ = make_tree(leaf_capacity=4)
    for i, (x, y) in enumerate(coords):
        tree.insert(Rect.point(x, y), i)
    qx, qy, w, h = query
    window = Rect(qx, qy, qx + w, qy + h)
    expected = {
        i for i, (x, y) in enumerate(coords) if window.contains_point(x, y)
    }
    assert set(tree.search_rect(window)) == expected
    tree.check_invariants()
