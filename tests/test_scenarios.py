"""Production-shaped scenario streams: determinism, shape, oracles.

Covers the ISSUE 7 seed-plumbing audit (every generator takes an
explicit ``rng``/``seed``; same seed => byte-identical output) and the
structural guarantees of the city / grid / convoy / adversarial
streams the soak harness leans on.
"""

import json
import random

import pytest

from repro.core.model import LinearMotion1D, MobileObject1D
from repro.core.predicates import brute_force_1d
from repro.core.queries import MORQuery1D
from repro.indexes import NaiveScanIndex
from repro.service.sharding import VelocityRouter
from repro.workloads import (
    SCENARIO_NAMES,
    AdversarialSkewScenario,
    CityScenario,
    ConvoyScenario,
    GridBucketOracle,
    GridScenario,
    PlanarWorkloadGenerator,
    RouteScenario,
    Scenario,
    WorkloadConfig,
    WorkloadGenerator,
    build_scenario,
    grid_network,
    paper_model,
)
from repro.workloads.generator import SMALL_QUERIES


def stream_bytes(scenario, ticks=5):
    """Canonical byte serialization of a stream's full schedule."""
    chunks = [[e.as_tuple() for e in scenario.initial_events()]]
    for tick in range(1, ticks + 1):
        chunks.append([e.as_tuple() for e in scenario.tick_events(float(tick))])
        chunks.append([
            repr(scenario.random_query(float(tick))) for _ in range(4)
        ])
    return json.dumps(chunks).encode()


class TestSeedPlumbing:
    """Satellite: same seed => byte-identical, injected rng honoured."""

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_stream_byte_identical_across_runs(self, name):
        kwargs = dict(n=80, seed=13, arrivals_per_tick=2,
                      departures_per_tick=1)
        a = stream_bytes(build_scenario(name, **kwargs))
        b = stream_bytes(build_scenario(name, **kwargs))
        assert a == b
        c = stream_bytes(build_scenario(name, n=80, seed=14,
                                        arrivals_per_tick=2,
                                        departures_per_tick=1))
        assert a != c

    def test_workload_generator_rng_injection(self):
        seeded = WorkloadGenerator(seed=3)
        injected = WorkloadGenerator(rng=random.Random(3))
        assert seeded.initial_population(40) == injected.initial_population(40)
        assert (
            seeded.queries(SMALL_QUERIES, 10.0, 8)
            == injected.queries(SMALL_QUERIES, 10.0, 8)
        )
        # rng wins over seed when both are passed.
        both = WorkloadGenerator(seed=999, rng=random.Random(3))
        assert (
            WorkloadGenerator(seed=3).initial_population(10)
            == both.initial_population(10)
        )

    def test_planar_generator_rng_injection(self):
        seeded = PlanarWorkloadGenerator(seed=5)
        injected = PlanarWorkloadGenerator(rng=random.Random(5))
        assert seeded.initial_population(30) == injected.initial_population(30)

    def test_route_scenario_rng_injection(self):
        routes = grid_network(lanes=2, span=400.0)
        seeded = RouteScenario(routes, n=40, ticks=6, seed=9)
        injected = RouteScenario(
            grid_network(lanes=2, span=400.0), n=40, ticks=6,
            rng=random.Random(9),
        )
        r1 = seeded.run(validate=True)
        r2 = injected.run(validate=True)
        assert r1.update_count == r2.update_count
        assert r1.answer_sizes == r2.answer_sizes

    def test_scenario_driver_byte_identical(self):
        cfg = WorkloadConfig(
            n=60, updates_per_tick=6, ticks=8, query_instants=2,
            queries_per_instant=5, arrivals_per_tick=2,
            departures_per_tick=1, seed=21,
        )
        runs = []
        for _ in range(2):
            result = Scenario(cfg).run(
                NaiveScanIndex(paper_model(), page_capacity=16),
                SMALL_QUERIES, validate=True,
            )
            runs.append(json.dumps({
                "ios": result.query_ios,
                "answers": result.query_answer_sizes,
                "updates": result.update_ios,
                "mismatches": result.mismatches,
            }).encode())
        assert runs[0] == runs[1]


def replay_to_motions(events):
    """Apply a stream to a dict, asserting service-level legality."""
    motions = {}
    for event in events:
        if event.kind == "register":
            assert event.oid not in motions, f"double register {event.oid}"
            motions[event.oid] = LinearMotion1D(event.y0, event.v, event.t0)
        elif event.kind == "report":
            assert event.oid in motions, f"report for unknown {event.oid}"
            motions[event.oid] = LinearMotion1D(event.y0, event.v, event.t0)
        else:
            assert event.oid in motions, f"deregister unknown {event.oid}"
            del motions[event.oid]
    return motions


class TestStreamLegality:
    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_events_apply_cleanly_and_respect_model(self, name):
        scenario = build_scenario(
            name, n=60, seed=2, arrivals_per_tick=3, departures_per_tick=2
        )
        events = list(scenario.initial_events())
        for tick in range(1, 7):
            events.extend(scenario.tick_events(float(tick)))
        motions = replay_to_motions(events)
        assert motions.keys() == scenario.motions.keys()
        for event in events:
            if event.kind == "deregister":
                continue
            assert 0.0 <= event.y0 <= scenario.y_max
            assert scenario.v_min <= abs(event.v) <= scenario.v_max


class TestCityScenario:
    def test_vehicles_stay_on_their_routes(self):
        city = CityScenario(n=50, seed=4, updates_per_tick=10)
        events = list(city.initial_events())
        for tick in range(1, 9):
            events.extend(city.tick_events(float(tick)))
        # Every emitted position sits inside the emitting vehicle's
        # current route interval on the global axis.
        live = {}
        for event in events:
            if event.kind == "deregister":
                live.pop(event.oid, None)
                continue
            live[event.oid] = event
        for oid, event in live.items():
            ridx = city.route_of[oid]
            lo = city.route_offsets[ridx]
            hi = lo + city.routes[ridx].length
            assert lo <= event.y0 <= hi

    def test_flash_crowds_fire_and_bias_queries(self):
        city = CityScenario(
            n=60, seed=8, updates_per_tick=5, flash_every=2,
            flash_size=10, hotspot_query_bias=1.0,
        )
        city.initial_events()
        for tick in range(1, 7):
            city.tick_events(float(tick))
        assert city.flash_crowds >= 3
        query = city.random_query(7.0)
        # Hotspot queries are centred near the current hotspot.
        assert abs((query.y1 + query.y2) / 2.0 - city._hotspot) <= (
            city.flash_radius * 3 + 1.0
        )

    def test_rush_hour_biases_direction(self):
        city = CityScenario(
            n=400, seed=6, updates_per_tick=200,
            rush_period=20, rush_amplitude=0.35,
        )
        city.initial_events()
        # Tick 5 is the peak of sin() for period 20: expect a positive
        # direction majority well beyond coin-flip noise.
        events = city.tick_events(5.0)
        reports = [e for e in events if e.kind == "report"]
        positive = sum(1 for e in reports if e.v > 0)
        assert positive / len(reports) > 0.6


class TestGridScenario:
    def test_positions_and_speeds_integral(self):
        grid = GridScenario(n=80, seed=3, grid=500, v_grid=4,
                            updates_per_tick=20)
        events = list(grid.initial_events())
        for tick in range(1, 10):
            events.extend(grid.tick_events(float(tick)))
        for event in events:
            if event.kind == "deregister":
                continue
            assert float(event.y0).is_integer()
            assert float(event.v).is_integer()
            assert 1 <= abs(event.v) <= 4
            assert 0 <= event.y0 <= 500

    def test_bucket_oracle_matches_brute_force(self):
        rng = random.Random(17)
        motions = {
            oid: LinearMotion1D(
                float(rng.randint(0, 300)),
                float(rng.choice([-3, -2, -1, 1, 2, 3])),
                float(rng.randint(0, 5)),
            )
            for oid in range(120)
        }
        oracle = GridScenario.make_oracle(motions)
        objects = [MobileObject1D(o, m) for o, m in motions.items()]
        for _ in range(60):
            y1 = float(rng.randint(0, 280))
            y2 = y1 + rng.randint(0, 40)
            t1 = float(rng.randint(0, 20))
            t2 = t1 + rng.randint(0, 10)
            query = MORQuery1D(y1, y2, t1, t2)
            assert oracle.within(y1, y2, t1, t2) == brute_force_1d(
                objects, query
            )
            assert oracle.snapshot_at(y1, y2, t1) == {
                obj.oid for obj in objects
                if y1 <= obj.motion.position(t1) <= y2
            }

    def test_bucket_oracle_update_delete(self):
        oracle = GridBucketOracle()
        oracle.insert(1, LinearMotion1D(10.0, 2.0, 0.0))
        oracle.insert(2, LinearMotion1D(50.0, -1.0, 0.0))
        assert oracle.within(0.0, 100.0, 0.0, 1.0) == {1, 2}
        oracle.update(1, LinearMotion1D(500.0, 1.0, 0.0))
        assert oracle.within(0.0, 100.0, 0.0, 1.0) == {2}
        oracle.delete(2)
        assert oracle.within(0.0, 1000.0, 0.0, 1.0) == {1}
        assert len(oracle) == 1

    def test_bucket_oracle_rejects_fractional_slopes(self):
        oracle = GridBucketOracle()
        with pytest.raises(ValueError):
            oracle.insert(1, LinearMotion1D(0.0, 0.5, 0.0))


class TestConvoyScenario:
    def test_members_stay_in_declared_bands(self):
        convoy = ConvoyScenario(n=90, seed=12, convoys=5, jitter=0.08,
                                updates_per_tick=30)
        convoy.initial_events()
        for tick in range(1, 8):
            # An object may update twice in one tick (and defect in
            # between); its *last* event is the one drawn against the
            # membership that convoy_of reports after the tick.
            last = {}
            for event in convoy.tick_events(float(tick)):
                last[event.oid] = event
                if event.kind != "deregister":
                    assert convoy.v_min <= abs(event.v) <= convoy.v_max
            for oid, event in last.items():
                if event.kind == "deregister":
                    continue
                lo, hi = convoy.convoy_band(convoy.convoy_of(oid))
                assert lo - 1e-9 <= abs(event.v) <= hi + 1e-9

    def test_defections_switch_convoys(self):
        convoy = ConvoyScenario(n=120, seed=9, convoys=4,
                                defection_rate=0.5, updates_per_tick=60)
        convoy.initial_events()
        before = dict(convoy._member)
        for tick in range(1, 5):
            convoy.tick_events(float(tick))
        assert convoy.defections > 0
        moved = sum(
            1 for oid, cid in convoy._member.items()
            if before.get(oid) != cid
        )
        assert moved > 0


class TestAdversarialScenario:
    def test_everything_lands_on_one_velocity_shard(self):
        shards = 4
        scenario = AdversarialSkewScenario(n=80, seed=1, shards=shards,
                                           target_shard=2,
                                           updates_per_tick=20)
        router = VelocityRouter(shards, scenario.v_max)
        events = list(scenario.initial_events())
        for tick in range(1, 6):
            events.extend(scenario.tick_events(float(tick)))
        routed = {
            router.route(e.oid, LinearMotion1D(e.y0, e.v, e.t0))
            for e in events if e.kind != "deregister"
        }
        assert routed == {scenario.target_shard}

    def test_slopes_cluster_pathologically(self):
        scenario = AdversarialSkewScenario(n=100, seed=2, shards=4,
                                           slope_spread=0.05)
        speeds = sorted(abs(e.v) for e in scenario.initial_events())
        lo, hi = scenario.cluster
        assert speeds[0] >= lo - 1e-9 and speeds[-1] <= hi + 1e-9
        band_lo, band_hi = scenario.band
        # The cluster is a sliver of the router band.
        assert (hi - lo) <= (band_hi - band_lo) * 0.06

    def test_positions_pack_into_sliver(self):
        scenario = AdversarialSkewScenario(n=50, seed=3, shards=4,
                                           position_fraction=0.02)
        for event in scenario.initial_events():
            assert event.y0 <= scenario.y_max * 0.02 + 1e-9


class TestFactory:
    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            build_scenario("motorway", n=10)

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_model_params_accepted_by_service(self, name):
        from repro.service import ShardedMotionService

        scenario = build_scenario(name, n=20, seed=0)
        service = ShardedMotionService(
            shards=2, **scenario.model_params()
        )
        for event in scenario.initial_events():
            service.register(event.oid, event.y0, event.v, event.t0)
        assert sum(len(p) for p in service.shard_populations()) >= 20
