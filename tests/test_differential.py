"""Differential integration test: every 1-D method, one shared trace.

A single long random trace of inserts, updates, deletes and queries is
replayed against *all* registered MOR methods simultaneously; at every
query, all answers must be identical to each other and to the oracle.
This catches divergence bugs that independent per-method tests can
miss (e.g. off-by-one boundary handling that two methods share).
"""

import random

import pytest

from repro.core import LinearMotion1D, MORQuery1D, MobileObject1D, brute_force_1d
from repro.indexes import (
    DualKDTreeIndex,
    DualRTreeIndex,
    HoughYForestIndex,
    NaiveScanIndex,
    SegmentRTreeIndex,
)
from repro.indexes.partition_index import PartitionTreeIndex
from repro.indexes.tpr import TPRTreeIndex

from .helpers import PAPER_MODEL


def all_methods():
    return {
        "naive": NaiveScanIndex(PAPER_MODEL, page_capacity=16),
        "segment": SegmentRTreeIndex(PAPER_MODEL, page_capacity=8),
        "kdtree": DualKDTreeIndex(PAPER_MODEL, leaf_capacity=8),
        "rstar": DualRTreeIndex(PAPER_MODEL, page_capacity=8),
        "forest": HoughYForestIndex(PAPER_MODEL, c=3, leaf_capacity=8),
        "forest-piecewise": HoughYForestIndex(
            PAPER_MODEL, c=3, leaf_capacity=8, wide_strategy="piecewise"
        ),
        "partition": PartitionTreeIndex(
            PAPER_MODEL, leaf_capacity=8, internal_capacity=16
        ),
        "tpr": TPRTreeIndex(PAPER_MODEL, page_capacity=8),
    }


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_long_shared_trace(seed):
    rng = random.Random(seed)
    indexes = all_methods()
    live = {}
    next_id = 0
    now = 0.0
    divergences = []
    for step in range(400):
        now += rng.uniform(0.0, 1.0)
        action = rng.random()
        if action < 0.45 or not live:
            # insert
            speed = rng.uniform(PAPER_MODEL.v_min, PAPER_MODEL.v_max)
            direction = 1 if rng.random() < 0.5 else -1
            obj = MobileObject1D(
                next_id,
                LinearMotion1D(rng.uniform(0, 1000), direction * speed, now),
            )
            for index in indexes.values():
                index.insert(obj)
            live[next_id] = obj
            next_id += 1
        elif action < 0.65:
            # update
            oid = rng.choice(list(live))
            speed = rng.uniform(PAPER_MODEL.v_min, PAPER_MODEL.v_max)
            direction = 1 if rng.random() < 0.5 else -1
            obj = MobileObject1D(
                oid,
                LinearMotion1D(rng.uniform(0, 1000), direction * speed, now),
            )
            for index in indexes.values():
                index.update(obj)
            live[oid] = obj
        elif action < 0.8:
            # delete
            oid = rng.choice(list(live))
            for index in indexes.values():
                index.delete(oid)
            del live[oid]
        else:
            # query
            y1 = rng.uniform(0, 990)
            y2 = min(1000.0, y1 + rng.uniform(0, 500))
            t1 = now + rng.uniform(0, 60)
            t2 = t1 + rng.uniform(0, 60)
            query = MORQuery1D(y1, y2, t1, t2)
            expected = brute_force_1d(live.values(), query)
            for name, index in indexes.items():
                got = index.query(query)
                if got != expected:
                    divergences.append((step, name, got ^ expected))
    assert not divergences, divergences[:5]
    for index in indexes.values():
        assert len(index) == len(live)
