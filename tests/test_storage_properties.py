"""Property tests for the durable log: arbitrary damage, no surprises.

The contract under test (ISSUE 6 satellite): for *any* truncation
point and *any* single-bit flip, recovery yields a prefix of the
committed records and never an unhandled exception.  Truncation is
checked exhaustively at every byte offset; payload shapes and damage
locations are additionally explored by hypothesis.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import DurableLog, pack_frame, scan_log

pytestmark = pytest.mark.durability

payloads_strategy = st.lists(
    st.binary(min_size=0, max_size=64), min_size=0, max_size=12
)


def log_bytes(payloads):
    return b"".join(pack_frame(p) for p in payloads)


def frame_index_at(payloads, offset):
    """Which frame the byte at ``offset`` belongs to."""
    position = 0
    for i, p in enumerate(payloads):
        position += len(pack_frame(p))
        if offset < position:
            return i
    return len(payloads)


@given(payloads=payloads_strategy)
@settings(max_examples=60, deadline=None)
def test_scan_roundtrip(payloads):
    scanned, valid = scan_log(log_bytes(payloads))
    assert scanned == payloads
    assert valid == len(log_bytes(payloads))


def test_truncation_at_every_byte_offset_yields_a_prefix():
    """Exhaustive: cut the log after every single byte."""
    payloads = [b"", b"a", b"bb" * 20, b"c" * 7, b"dd", b"e" * 33]
    data = log_bytes(payloads)
    for offset in range(len(data) + 1):
        scanned, valid = scan_log(data[:offset])
        # A (possibly empty) prefix of the committed records...
        assert scanned == payloads[:len(scanned)]
        # ...containing every record that fits entirely in the cut.
        assert len(scanned) == frame_index_at(payloads, offset)
        assert valid <= offset


@given(payloads=payloads_strategy, data=st.data())
@settings(max_examples=80, deadline=None)
def test_random_truncation_yields_a_prefix(payloads, data):
    blob = log_bytes(payloads)
    offset = data.draw(st.integers(min_value=0, max_value=len(blob)))
    scanned, valid = scan_log(blob[:offset])
    assert scanned == payloads[:len(scanned)]
    assert len(scanned) == frame_index_at(payloads, offset)


@given(payloads=payloads_strategy.filter(lambda ps: log_bytes(ps)),
       data=st.data())
@settings(max_examples=80, deadline=None)
def test_single_bit_flip_never_crashes_and_keeps_earlier_records(
    payloads, data
):
    blob = bytearray(log_bytes(payloads))
    offset = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    bit = data.draw(st.integers(min_value=0, max_value=7))
    blob[offset] ^= 1 << bit
    scanned, valid = scan_log(bytes(blob))
    damaged = frame_index_at(payloads, offset)
    # Everything before the damaged frame survives intact; CRC framing
    # guarantees the damage is detected there (single-bit errors are
    # always caught by CRC32), cutting the recovered prefix.
    assert scanned[:damaged] == payloads[:damaged]
    assert len(scanned) >= damaged
    assert valid <= len(blob)


@given(payloads=payloads_strategy, cut=st.integers(min_value=0,
                                                   max_value=1000),
       tail=st.binary(min_size=0, max_size=32))
@settings(max_examples=60, deadline=None)
def test_durable_log_reopen_truncates_and_continues(tmp_path_factory,
                                                    payloads, cut, tail):
    """End-to-end through DurableLog: damage the file on disk, reopen,
    recover the prefix, keep appending — the log must stay usable."""
    directory = tmp_path_factory.mktemp("proplog")
    path = str(directory / "wal.log")
    log = DurableLog(path, fsync="always")
    for p in payloads:
        log.append(p)
    log.close()
    blob = log_bytes(payloads)
    keep = min(cut, len(blob))
    with open(path, "wb") as handle:
        handle.write(blob[:keep] + tail)
    reopened = DurableLog(path, fsync="always")
    recovered = list(reopened.recovered_payloads)
    # Frames wholly inside the kept prefix always survive intact.  (No
    # stronger claim: arbitrary garbage after the cut can legitimately
    # form a *valid* frame — e.g. eight zero bytes decode as an empty
    # record — and recovery has no way to tell it from a real one.)
    intact = frame_index_at(payloads, keep)
    assert recovered[:intact] == payloads[:intact]
    reopened.append(b"post-damage")
    reopened.close()
    final = DurableLog(path)
    assert final.recovered_payloads == recovered + [b"post-damage"]
    final.close()
