"""Tests for the route-network workload driver (§4.1)."""

import pytest

from repro.workloads.route_workload import (
    RouteScenario,
    grid_network,
    star_network,
)


class TestNetworks:
    def test_grid(self):
        routes = grid_network(lanes=3, span=600.0)
        assert len(routes) == 6
        assert len({r.route_id for r in routes}) == 6
        for route in routes:
            assert route.length == pytest.approx(600.0)

    def test_star(self):
        routes = star_network(spokes=5, span=1000.0)
        assert len(routes) == 5
        for route in routes:
            assert route.length == pytest.approx(500.0)
            assert route.points[0] == (500.0, 500.0)


class TestRouteScenario:
    def test_scenario_validates_against_oracle(self):
        scenario = RouteScenario(
            grid_network(lanes=3),
            n=150,
            ticks=10,
            reroutes_per_tick=3,
            queries_per_instant=5,
            query_instants=2,
            seed=17,
        )
        result = scenario.run(validate=True)
        assert result.update_count > 0
        assert len(result.answer_sizes) == 10
        assert len(result.query_ios) == 10
        assert result.avg_query_io > 0
        assert result.space_pages > 0

    def test_star_network_scenario(self):
        scenario = RouteScenario(
            star_network(spokes=4),
            n=80,
            ticks=8,
            seed=19,
        )
        result = scenario.run(validate=True)
        assert result.n == 80
        assert result.space_pages > 0

    def test_reproducible(self):
        def run():
            scenario = RouteScenario(grid_network(lanes=2), n=50, ticks=6, seed=23)
            return scenario.run().answer_sizes

        assert run() == run()


class TestCustomRouteIndexFactory:
    def test_kdtree_backed_routes(self):
        from repro.indexes import DualKDTreeIndex

        scenario = RouteScenario(
            grid_network(lanes=2),
            n=60,
            ticks=6,
            seed=29,
            index_factory=lambda m: DualKDTreeIndex(m, leaf_capacity=8),
        )
        result = scenario.run(validate=True)
        assert result.space_pages > 0

    def test_position_of_helper(self):
        from repro.core import LinearMotion1D
        from repro.twod import Route, RouteNetworkIndex

        route = Route(1, ((0.0, 0.0), (100.0, 0.0)))
        net = RouteNetworkIndex([route], 0.1, 2.0)
        motion = LinearMotion1D(10.0, 1.0, 0.0)
        net.insert(1, 1, motion)
        assert net.position_of(1, motion, t=15.0) == (25.0, 0.0)
