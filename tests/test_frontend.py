"""The asyncio front door: admission control, shedding, SLO spans.

* answers through the frontend are byte-identical to calling
  ``query_batch`` directly — the valve adds no semantics;
* a full admission queue sheds *immediately* with a typed
  :class:`Overloaded` (falsy, carries the op and observed depth) —
  callers never block on a queue that has no room;
* every accepted request's queue+service latency lands in the
  metrics registry under ``frontend.<op>`` and the accounting
  identity ``offered == accepted + shed`` / ``accepted ==
  completed`` holds;
* ``stop()`` drains what was admitted (admission is a promise) and
  further submits fail loudly;
* the background health cadence recovers down shards and gives the
  rebalance controller its ``maybe_rebalance`` tick.
"""

import asyncio
import random
import time

import pytest

from repro.service import (
    AsyncFrontend,
    FaultTolerantMotionService,
    FrontendConfig,
    Overloaded,
    RebalanceConfig,
    RebalanceController,
    ShardedMotionService,
)
from repro.vector.ops import Nearest, RegisterOp, SnapshotAt, Within

pytestmark = pytest.mark.parallel

Y_MAX, V_MIN, V_MAX = 1000.0, 0.16, 1.66


def populate(service, seed=5, n=80):
    rng = random.Random(seed)
    ops = []
    for oid in range(n):
        speed = rng.uniform(V_MIN, V_MAX) * rng.choice([1.0, -1.0])
        ops.append(RegisterOp(oid, rng.uniform(0, Y_MAX), speed, 0.0))
    service.apply_batch(ops)
    return rng


def mixed_queries(rng, count):
    ops = []
    for q in range(count):
        t1 = rng.uniform(5, 40)
        y1 = rng.uniform(0, Y_MAX - 120)
        kind = q % 3
        if kind == 0:
            ops.append(Within(y1, y1 + rng.uniform(10, 120), t1, t1 + 10))
        elif kind == 1:
            ops.append(SnapshotAt(y1, y1 + rng.uniform(10, 120), t1))
        else:
            ops.append(Nearest(y1, t1, k=rng.randint(1, 5)))
    return ops


def make_service(**kwargs):
    service = ShardedMotionService(
        Y_MAX, V_MIN, V_MAX, shards=3, cache_capacity=0, **kwargs
    )
    populate(service)
    return service


def test_config_validation():
    with pytest.raises(ValueError):
        FrontendConfig(queue_depth=0)
    with pytest.raises(ValueError):
        FrontendConfig(max_batch=0)
    with pytest.raises(ValueError):
        FrontendConfig(health_every_s=-1.0)


def test_frontend_answers_match_direct_query_batch():
    service = make_service()
    rng = random.Random(17)
    ops = mixed_queries(rng, 30)
    want = service.query_batch(ops)

    async def drive():
        async with AsyncFrontend(
            service, FrontendConfig(health_every_s=0.0)
        ) as frontend:
            return await frontend.submit_many(ops)

    got = asyncio.run(drive())
    assert got == want
    snapshot = service.metrics.snapshot()
    spans = {
        name for name in snapshot["operations"] if name.startswith("frontend.")
    }
    assert spans == {
        "frontend.within", "frontend.snapshot_at", "frontend.nearest"
    }
    for name in spans:
        stats = snapshot["operations"][name]
        assert stats["calls"] == 10
        assert stats["p99_ms"] >= stats["p50_ms"] >= 0.0
    counters = snapshot["counters"]
    assert counters["frontend_accepted"] == 30
    assert counters["frontend_completed"] == 30
    assert counters.get("frontend_shed", 0) == 0


def test_full_queue_sheds_typed_and_bounded():
    service = make_service()
    rng = random.Random(19)
    ops = mixed_queries(rng, 40)
    # Slow the service down so the queue actually fills: each dispatch
    # holds the worker thread long enough for every client to arrive.
    direct = service.query_batch

    def slow_query_batch(batch):
        time.sleep(0.03)
        return direct(batch)

    service.query_batch = slow_query_batch
    config = FrontendConfig(queue_depth=4, max_batch=2, health_every_s=0.0)

    async def drive():
        async with AsyncFrontend(service, config) as frontend:
            return await frontend.submit_many(ops)

    results = asyncio.run(drive())
    shed = [r for r in results if isinstance(r, Overloaded)]
    served = [r for r in results if not isinstance(r, Overloaded)]
    assert shed, "overload never tripped admission control"
    for reject in shed:
        assert not reject  # falsy by contract
        assert reject.queue_depth <= config.queue_depth
        assert reject.op in ops
    counters = service.metrics.snapshot()["counters"]
    assert counters["frontend_shed"] == len(shed)
    assert counters["frontend_accepted"] == len(served)
    assert counters["frontend_completed"] == len(served)
    assert counters["frontend_accepted"] + counters["frontend_shed"] == 40


def test_stop_drains_admitted_then_rejects():
    service = make_service()
    rng = random.Random(29)
    ops = mixed_queries(rng, 12)
    want = service.query_batch(ops)

    async def drive():
        frontend = AsyncFrontend(
            service, FrontendConfig(health_every_s=0.0)
        )
        await frontend.start()
        pending = [
            asyncio.ensure_future(frontend.submit(op)) for op in ops
        ]
        await asyncio.sleep(0)  # let every submit reach the queue
        await frontend.stop()  # admission is a promise: all answered
        results = [await p for p in pending]
        with pytest.raises(RuntimeError):
            await frontend.submit(ops[0])
        return results

    assert asyncio.run(drive()) == want


def test_submit_before_start_raises():
    service = make_service()

    async def drive():
        frontend = AsyncFrontend(service)
        with pytest.raises(RuntimeError):
            await frontend.submit(SnapshotAt(0.0, 10.0, 1.0))

    asyncio.run(drive())


def test_dispatch_failure_propagates_per_request():
    service = make_service()

    def broken(batch):
        raise RuntimeError("shard exploded")

    service.query_batch = broken

    async def drive():
        async with AsyncFrontend(
            service, FrontendConfig(health_every_s=0.0)
        ) as frontend:
            with pytest.raises(RuntimeError, match="shard exploded"):
                await frontend.submit(SnapshotAt(0.0, 10.0, 1.0))

    asyncio.run(drive())
    assert service.metrics.counter("frontend_failed").value == 1


def test_health_cadence_recovers_and_ticks_rebalance():
    service = FaultTolerantMotionService(
        Y_MAX, V_MIN, V_MAX, shards=3, replication_factor=2
    )
    populate(service)

    class TickingRebalancer:
        def __init__(self):
            self.calls = 0

        def maybe_rebalance(self):
            self.calls += 1
            return object() if self.calls == 1 else None

    ticker = TickingRebalancer()
    service.kill_shard(1)

    async def drive():
        config = FrontendConfig(health_every_s=0.02)
        async with AsyncFrontend(service, config, rebalancer=ticker):
            await asyncio.sleep(0.25)

    asyncio.run(drive())
    assert service.down_shards() == []  # auto-recovered by the sweep
    assert ticker.calls >= 2
    counters = service.metrics.snapshot()["counters"]
    assert counters["frontend_health_checks"] >= 2
    assert counters["frontend_rebalances"] == 1


def test_latency_skew_feeds_serving_cadence_end_to_end():
    """Satellite wiring proof: per-shard compute spans recorded by the
    query path feed the controller's latency detector, and the
    frontend's sweep is what pulls the trigger."""
    service = make_service(router="velocity")
    controller = RebalanceController(
        service,
        RebalanceConfig(
            skew_threshold=1e9,  # count detector muted
            latency_skew_threshold=2.5,
            min_objects=1,
        ),
    )
    rng = random.Random(31)
    service.query_batch(mixed_queries(rng, 12))
    assert controller.latency_skew() > 0.0  # real spans, all shards
    # Forge a hot shard: the detector reads p99 per shard, so a pile
    # of slow samples on shard 0 trips it regardless of counts.
    # One hot shard among three: max/mean approaches (but never quite
    # reaches) the shard count, so the 2.5 threshold trips.
    for _ in range(40):
        service.metrics.record_shard_latency(0, "query_batch.compute", 0.5)
    assert controller.latency_skew() >= 2.5
    assert controller.should_rebalance()

    async def drive():
        config = FrontendConfig(health_every_s=0.02)
        async with AsyncFrontend(service, config, rebalancer=controller):
            await asyncio.sleep(0.1)

    asyncio.run(drive())
    counters = service.metrics.snapshot()["counters"]
    assert counters["rebalance_auto_triggers"] >= 1
    assert counters["frontend_rebalances"] >= 1
