"""Tests for the slow-object store, the hybrid split and the MOR1 adapter."""

import random

import pytest

from repro.core import (
    LinearMotion1D,
    MOR1Query,
    MORQuery1D,
    MobileObject1D,
    MotionModel,
    Terrain1D,
    brute_force_1d,
    brute_force_mor1,
)
from repro.errors import (
    DuplicateObjectError,
    InvalidMotionError,
    InvalidQueryError,
    ObjectNotFoundError,
)
from repro.indexes import (
    DualKDTreeIndex,
    HybridIndex,
    MOR1AdapterIndex,
    SlowObjectIndex,
)

from .helpers import PAPER_MODEL, random_objects, random_queries


def slow_objects(rng, n, v_slow=0.16, t0_max=50.0):
    objects = []
    for oid in range(n):
        objects.append(
            MobileObject1D(
                oid,
                LinearMotion1D(
                    rng.uniform(0, 1000),
                    rng.uniform(-v_slow, v_slow),
                    rng.uniform(0, t0_max),
                ),
            )
        )
    return objects


class TestSlowObjectIndex:
    def test_matches_brute_force(self):
        rng = random.Random(7)
        index = SlowObjectIndex(PAPER_MODEL, leaf_capacity=8)
        objects = slow_objects(rng, 200)
        for obj in objects:
            index.insert(obj)
        for query in random_queries(rng, 30, t_now=100.0):
            assert index.query(query) == brute_force_1d(objects, query)

    def test_rejects_fast_motion(self):
        index = SlowObjectIndex(PAPER_MODEL)
        with pytest.raises(InvalidMotionError):
            index.insert(MobileObject1D(1, LinearMotion1D(0.0, 1.0)))

    def test_duplicate_and_missing(self):
        index = SlowObjectIndex(PAPER_MODEL, leaf_capacity=8)
        index.insert(MobileObject1D(1, LinearMotion1D(5.0, 0.01)))
        with pytest.raises(DuplicateObjectError):
            index.insert(MobileObject1D(1, LinearMotion1D(9.0, 0.0)))
        with pytest.raises(ObjectNotFoundError):
            index.delete(2)

    def test_stationary_objects(self):
        index = SlowObjectIndex(PAPER_MODEL, leaf_capacity=8)
        index.insert(MobileObject1D(1, LinearMotion1D(100.0, 0.0)))
        hit = MORQuery1D(90.0, 110.0, 1e6, 1e6)  # far future: still there
        assert index.query(hit) == {1}

    def test_reanchoring_keeps_answers_exact(self):
        """Queries far beyond the drift budget trigger a re-anchor and
        must stay exact before and after."""
        rng = random.Random(8)
        index = SlowObjectIndex(PAPER_MODEL, leaf_capacity=8)
        objects = slow_objects(rng, 120)
        for obj in objects:
            index.insert(obj)
        t_ref_before = index.t_ref
        # Drift budget is y_max/20 = 50 units at v_slow = 0.16:
        # ~312 time units. Query at t = 5000 forces a re-anchor.
        for query in random_queries(rng, 10, t_now=5000.0):
            assert index.query(query) == brute_force_1d(objects, query)
        assert index.t_ref != t_ref_before
        # And churn after the re-anchor still works.
        for oid in list(range(0, 120, 3)):
            index.delete(oid)
        survivors = [o for o in objects if o.oid % 3 != 0]
        for query in random_queries(rng, 10, t_now=5100.0):
            assert index.query(query) == brute_force_1d(survivors, query)


class TestHybridIndex:
    def make(self):
        return HybridIndex(
            PAPER_MODEL,
            fast_factory=lambda m: DualKDTreeIndex(m, leaf_capacity=8),
        )

    def test_full_speed_range_matches_brute_force(self):
        rng = random.Random(9)
        hybrid = self.make()
        movers = random_objects(rng, 120)
        slows = [
            MobileObject1D(1000 + o.oid, o.motion)
            for o in slow_objects(rng, 60)
        ]
        population = movers + slows
        for obj in population:
            hybrid.insert(obj)
        assert len(hybrid) == 180
        for query in random_queries(rng, 25, t_now=120.0):
            assert hybrid.query(query) == brute_force_1d(population, query)

    def test_band_routing_and_deletion(self):
        hybrid = self.make()
        hybrid.insert(MobileObject1D(1, LinearMotion1D(10.0, 1.0)))
        hybrid.insert(MobileObject1D(2, LinearMotion1D(20.0, 0.0)))
        assert hybrid._band == {1: "fast", 2: "slow"}
        hybrid.delete(1)
        hybrid.delete(2)
        assert len(hybrid) == 0
        with pytest.raises(ObjectNotFoundError):
            hybrid.delete(1)

    def test_rejects_overspeed_and_duplicates(self):
        hybrid = self.make()
        with pytest.raises(InvalidMotionError):
            hybrid.insert(MobileObject1D(1, LinearMotion1D(0.0, 99.0)))
        hybrid.insert(MobileObject1D(1, LinearMotion1D(0.0, 1.0)))
        with pytest.raises(DuplicateObjectError):
            hybrid.insert(MobileObject1D(1, LinearMotion1D(0.0, 0.0)))

    def test_update_may_switch_bands(self):
        hybrid = self.make()
        hybrid.insert(MobileObject1D(1, LinearMotion1D(10.0, 1.0)))
        hybrid.update(MobileObject1D(1, LinearMotion1D(50.0, 0.01, 5.0)))
        assert hybrid._band[1] == "slow"
        assert hybrid.query(MORQuery1D(45.0, 55.0, 5.0, 6.0)) == {1}

    def test_pages_and_buffers(self):
        hybrid = self.make()
        hybrid.insert(MobileObject1D(1, LinearMotion1D(10.0, 1.0)))
        assert hybrid.pages_in_use > 0
        hybrid.clear_buffers()


class TestMOR1Adapter:
    def test_instant_queries_match_brute_force(self):
        rng = random.Random(11)
        adapter = MOR1AdapterIndex(PAPER_MODEL, window=100.0)
        objects = random_objects(rng, 100, t0_max=0.0)
        for obj in objects:
            adapter.insert(obj)
        for _ in range(15):
            t = rng.uniform(0, 250)
            y1 = rng.uniform(0, 900)
            query = MOR1Query(y1, y1 + 100, t)
            assert adapter.query_instant(query) == brute_force_mor1(
                objects, query
            )

    def test_window_queries_rejected(self):
        adapter = MOR1AdapterIndex(PAPER_MODEL, window=50.0)
        adapter.insert(MobileObject1D(1, LinearMotion1D(0.0, 1.0, 0.0)))
        with pytest.raises(InvalidQueryError):
            adapter.query(MORQuery1D(0, 10, 5.0, 6.0))
        # Degenerate windows are fine.
        assert adapter.query(MORQuery1D(0, 10, 5.0, 5.0)) == {1}

    def test_updates_invalidate_windows(self):
        adapter = MOR1AdapterIndex(PAPER_MODEL, window=50.0)
        adapter.insert(MobileObject1D(1, LinearMotion1D(0.0, 1.0, 0.0)))
        assert adapter.query(MORQuery1D(0, 20, 10.0, 10.0)) == {1}
        assert adapter.built_windows  # a window was materialised
        adapter.update(MobileObject1D(1, LinearMotion1D(500.0, 1.0, 0.0)))
        assert adapter.built_windows == []  # invalidated
        assert adapter.query(MORQuery1D(0, 20, 10.0, 10.0)) == set()
        assert adapter.query(MORQuery1D(505.0, 515.0, 10.0, 10.0)) == {1}

    def test_empty_population(self):
        adapter = MOR1AdapterIndex(PAPER_MODEL, window=50.0)
        assert adapter.query(MORQuery1D(0, 10, 5.0, 5.0)) == set()
        assert len(adapter) == 0
        assert adapter.pages_in_use == 0

    def test_errors(self):
        adapter = MOR1AdapterIndex(PAPER_MODEL, window=50.0)
        adapter.insert(MobileObject1D(1, LinearMotion1D(0.0, 1.0, 0.0)))
        with pytest.raises(DuplicateObjectError):
            adapter.insert(MobileObject1D(1, LinearMotion1D(0.0, 1.0, 0.0)))
        with pytest.raises(ObjectNotFoundError):
            adapter.delete(9)
        with pytest.raises(InvalidMotionError):
            adapter.insert(MobileObject1D(2, LinearMotion1D(0.0, 0.0, 0.0)))
