"""Tests for the T_period two-generation index rotation (paper §3.2)."""

import random

import pytest

from repro.core import LinearMotion1D, MobileObject1D, brute_force_1d
from repro.errors import ObjectNotFoundError
from repro.indexes import DualKDTreeIndex, RotatingIndex

from .helpers import PAPER_MODEL, random_objects, random_queries

T_PERIOD = PAPER_MODEL.t_period  # 6250 time units


def make_rotating():
    return RotatingIndex(
        PAPER_MODEL,
        factory=lambda t_ref: DualKDTreeIndex(
            PAPER_MODEL, t_ref=t_ref, leaf_capacity=8
        ),
    )


class TestRotation:
    def test_single_generation_initially(self):
        index = make_rotating()
        rng = random.Random(1)
        for obj in random_objects(rng, 50, t0_max=T_PERIOD * 0.9):
            index.insert(obj)
        assert index.generation_count == 1
        assert index.generation_epochs == [0]

    def test_two_generations_straddle_the_period(self):
        index = make_rotating()
        rng = random.Random(2)
        early = random_objects(rng, 40, t0_max=T_PERIOD * 0.9)
        for obj in early:
            index.insert(obj)
        # Objects updating after T_period land in the next generation.
        late = [
            MobileObject1D(
                100 + obj.oid,
                LinearMotion1D(obj.motion.y0, obj.motion.v, T_PERIOD * 1.2),
            )
            for obj in early[:20]
        ]
        for obj in late:
            index.insert(obj)
        assert index.generation_count == 2
        assert index.generation_epochs == [0, 1]
        assert len(index) == 60

    def test_old_generation_retires_when_empty(self):
        index = make_rotating()
        rng = random.Random(3)
        early = random_objects(rng, 30, t0_max=100.0)
        for obj in early:
            index.insert(obj)
        # Every object issues a fresh update in the next period.
        for obj in early:
            replacement = MobileObject1D(
                obj.oid,
                LinearMotion1D(
                    obj.motion.y0, obj.motion.v, T_PERIOD + 10.0
                ),
            )
            index.update(replacement)
        # The epoch-0 generation emptied out and was recycled (§3.2).
        assert index.generation_epochs == [1]
        assert len(index) == 30

    def test_queries_union_generations(self):
        index = make_rotating()
        rng = random.Random(4)
        objects = {}
        for obj in random_objects(rng, 60, t0_max=100.0):
            index.insert(obj)
            objects[obj.oid] = obj
        for oid in list(objects)[::2]:
            replacement = MobileObject1D(
                oid,
                LinearMotion1D(
                    rng.uniform(0, 1000),
                    rng.choice([-1, 1]) * rng.uniform(0.16, 1.66),
                    T_PERIOD + 50.0,
                ),
            )
            index.update(replacement)
            objects[oid] = replacement
        assert index.generation_count == 2
        for query in random_queries(rng, 25, t_now=T_PERIOD + 100.0, tw_max=60.0):
            assert index.query(query) == brute_force_1d(
                objects.values(), query
            )

    def test_intercepts_stay_bounded(self):
        """The rotation's whole point: generation-local intercepts are
        computed against the generation epoch, so they never grow with
        absolute time."""
        index = make_rotating()
        # An object updating far in the future: epoch-k generation.
        far = 7 * T_PERIOD + 123.0
        obj = MobileObject1D(
            1, LinearMotion1D(y0=500.0, v=1.0, t0=far)
        )
        index.insert(obj)
        (epoch,) = index.generation_epochs
        assert epoch == 7
        generation = index._generations[epoch]
        point = generation._trees[1].point_of(1)
        # Intercept measured at the epoch reference: within one period's
        # drift of the terrain, NOT ~7 * T_period.
        assert abs(point[1]) <= PAPER_MODEL.terrain.y_max + 1.66 * T_PERIOD

    def test_delete_unknown(self):
        index = make_rotating()
        with pytest.raises(ObjectNotFoundError):
            index.delete(404)

    def test_len_and_pages(self):
        index = make_rotating()
        rng = random.Random(5)
        for obj in random_objects(rng, 20):
            index.insert(obj)
        assert len(index) == 20
        assert index.pages_in_use > 0
        index.clear_buffers()
