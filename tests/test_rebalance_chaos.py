"""Crash-safe migration: the crash-at-every-point matrix.

The robustness half of the rebalancing acceptance criteria.  A
two-phase migration can die at any of its four protocol boundaries
(:data:`MIGRATION_CRASH_POINTS`); whatever the point and whatever the
log's fsync policy, recovery must land every object on **exactly one
shard** (per replica group) with a motion that was actually
acknowledged — in-flight migrations complete or roll back, never
fork.  Under ``fsync=always`` the recovered population is exactly the
acknowledged one.

Three layers of proof:

* the in-process matrix below — a :class:`CrashPointInjector` kills
  the controller at each point × fsync policy and a fresh service
  recovers from the same directory;
* destination death mid-plan — the controller aborts cleanly back to
  the source (``rebalance_aborted``) instead of wedging;
* the SIGKILL drill (``crashdrill --rebalance``) — real process
  death mid-migration-storm, no simulation in the loop.
"""

import random

import pytest

from repro.engine import MotionDatabase
from repro.errors import SimulatedCrashError
from repro.service import (
    MIGRATION_CRASH_POINTS,
    CrashPointInjector,
    FaultTolerantMotionService,
    RebalanceConfig,
    RebalanceController,
    RetryPolicy,
)
from repro.storage.crashdrill import run_drill

Y_MAX, V_MIN, V_MAX = 1000.0, 0.16, 1.66

pytestmark = [pytest.mark.rebalance, pytest.mark.chaos]


def fast_retry() -> RetryPolicy:
    return RetryPolicy(attempts=3, backoff_s=0.001, sleep=lambda s: None)


def make_service(directory, fsync, shards=3, replication=1):
    return FaultTolerantMotionService(
        Y_MAX, V_MIN, V_MAX,
        shards=shards,
        replication_factor=replication,
        router="velocity",
        retry=fast_retry(),
        wal_dir=str(directory),
        wal_fsync=fsync,
        checkpoint_every=16,
    )


def populate_skewed(service, n, seed):
    """All-slow population: the even default cut piles everything into
    band 0, so a forced rebalance always has migrations to run."""
    rng = random.Random(seed)
    for oid in range(n):
        v = (V_MIN + rng.random() * 0.1) * rng.choice((-1.0, 1.0))
        service.register(oid, rng.uniform(0.0, Y_MAX), v, 0.0)


def assert_exactly_one_shard(service):
    """Every object resides on exactly its owner's replica group and
    no migration is left open — a crash never forks ownership."""
    populations = service.shard_populations()
    for oid in service.motion_snapshot():
        holders = [
            shard for shard, pop in enumerate(populations) if oid in pop
        ]
        assert holders == sorted(
            service.replica_group(service.shard_of(oid))
        ), f"object {oid} resident on {holders}"
        assert service.migration_of(oid) is None


@pytest.mark.parametrize("fsync", ["always", "never"])
@pytest.mark.parametrize("point", MIGRATION_CRASH_POINTS)
def test_crash_at_every_migration_point_recovers(tmp_path, point, fsync):
    service = make_service(tmp_path, fsync)
    populate_skewed(service, 40, seed=13)
    # Migrations never change acknowledged motion, so this snapshot is
    # the expected answer no matter where the crash lands.
    expected = service.motion_snapshot()

    injector = CrashPointInjector().arm(point)
    controller = RebalanceController(
        service,
        RebalanceConfig(min_objects=1),
        retry=fast_retry(),
        crash_hook=injector,
    )
    with pytest.raises(SimulatedCrashError):
        controller.rebalance_once(force=True)
    assert injector.fired == [(point, 1)]
    service.close()

    restored = make_service(tmp_path, fsync)
    summary = restored.restore_from_disk()
    try:
        assert_exactly_one_shard(restored)
        recovered = restored.motion_snapshot()
        if fsync == "always":
            # Zero loss: every acknowledged update survived, verbatim.
            assert recovered == expected
            assert summary["objects"] == len(expected)
        else:
            # Weaker policies may drop a committed tail, but can never
            # invent state or fork an object.
            assert set(recovered) <= set(expected)
            for oid, motion in recovered.items():
                assert motion == expected[oid]
    finally:
        restored.close()


@pytest.mark.parametrize("point", MIGRATION_CRASH_POINTS)
def test_crashed_migration_resolves_and_queries_match(tmp_path, point):
    """After recovery the full query surface agrees with a faultless
    oracle holding the same acknowledged motions."""
    service = make_service(tmp_path / point.replace(".", "-"), "always")
    populate_skewed(service, 30, seed=17)
    expected = service.motion_snapshot()
    injector = CrashPointInjector().arm(point)
    controller = RebalanceController(
        service, RebalanceConfig(min_objects=1),
        retry=fast_retry(), crash_hook=injector,
    )
    with pytest.raises(SimulatedCrashError):
        controller.rebalance_once(force=True)
    service.close()

    restored = make_service(tmp_path / point.replace(".", "-"), "always")
    restored.restore_from_disk()
    oracle = MotionDatabase(Y_MAX, V_MIN, V_MAX, method="forest")
    for oid, motion in sorted(expected.items()):
        oracle.register(oid, motion.y0, motion.v, motion.t0)
    try:
        now = restored.now
        assert restored.within(0.0, Y_MAX, 0.0, now + 10.0) == oracle.within(
            0.0, Y_MAX, 0.0, now + 10.0
        )
        assert restored.nearest(Y_MAX / 2, now + 1.0, k=5) == oracle.nearest(
            Y_MAX / 2, now + 1.0, k=5
        )
        # The crashed run left a half-balanced catalog behind; a fresh
        # controller pass completes the job — migrations resume, they
        # do not wedge.
        report = RebalanceController(
            restored, RebalanceConfig(min_objects=1), retry=fast_retry()
        ).rebalance_once(force=True)
        assert report.skew_after <= report.skew_before
        assert_exactly_one_shard(restored)
    finally:
        restored.close()


def test_destination_death_aborts_back_to_source(tmp_path):
    service = make_service(tmp_path, "always", shards=3)
    populate_skewed(service, 30, seed=19)
    controller = RebalanceController(
        service, RebalanceConfig(min_objects=1), retry=fast_retry()
    )
    expected = service.motion_snapshot()
    before_counts = service.primary_counts()
    # Kill the shard the skewed population would spill into: every
    # planned move targeting it must abort cleanly back to its source.
    service.kill_shard(2, reason="chaos: destination death")
    report = controller.rebalance_once(force=True)
    assert report.aborted > 0
    counters = service.metrics.snapshot()["counters"]
    assert counters["rebalance_aborted"] == report.aborted
    # Aborted objects kept their source placement and motion; nothing
    # was lost, duplicated, or left mid-protocol.
    assert service.motion_snapshot() == expected
    for oid in expected:
        assert service.migration_of(oid) is None
    assert sum(service.primary_counts()) == sum(before_counts)
    service.close()


@pytest.mark.slow
@pytest.mark.durability
def test_sigkill_drill_with_rebalance_storm(tmp_path):
    """Real process death mid-migration-storm: the drill's child
    toggles band layouts to keep two-phase migrations in flight, the
    parent SIGKILLs it and asserts zero loss + exactly-one-shard."""
    status = run_drill(
        directory=str(tmp_path),
        fsync="always",
        shards=2,
        objects=24,
        kill_after_acks=150,
        seed=11,
        timeout_s=120.0,
        rebalance=True,
    )
    assert status == 0
