"""Tests for motions, terrains, queries and the motion model."""

import math

import pytest

from repro.core import (
    LinearMotion1D,
    LinearMotion2D,
    MOR1Query,
    MORQuery1D,
    MORQuery2D,
    MotionModel,
    Terrain1D,
    Terrain2D,
)
from repro.errors import InvalidMotionError, InvalidQueryError


class TestLinearMotion1D:
    def test_position_extrapolation(self):
        motion = LinearMotion1D(y0=10.0, v=2.0, t0=5.0)
        assert motion.position(5.0) == 10.0
        assert motion.position(8.0) == 16.0
        assert motion.position(0.0) == 0.0  # extrapolating backwards

    def test_time_at(self):
        motion = LinearMotion1D(y0=10.0, v=2.0, t0=5.0)
        assert motion.time_at(20.0) == 10.0
        assert motion.time_at(10.0) == 5.0

    def test_time_at_stationary_raises(self):
        with pytest.raises(InvalidMotionError):
            LinearMotion1D(1.0, 0.0).time_at(2.0)

    def test_time_interval_in_range(self):
        motion = LinearMotion1D(y0=0.0, v=1.0, t0=0.0)
        assert motion.time_interval_in_range(5.0, 10.0) == (5.0, 10.0)
        # Negative velocity swaps crossing order.
        down = LinearMotion1D(y0=10.0, v=-1.0, t0=0.0)
        assert down.time_interval_in_range(5.0, 8.0) == (2.0, 5.0)

    def test_time_interval_stationary(self):
        inside = LinearMotion1D(y0=7.0, v=0.0)
        assert inside.time_interval_in_range(5.0, 10.0) == (-math.inf, math.inf)
        outside = LinearMotion1D(y0=1.0, v=0.0)
        assert outside.time_interval_in_range(5.0, 10.0) is None

    def test_time_interval_empty_range_rejected(self):
        with pytest.raises(InvalidMotionError):
            LinearMotion1D(0.0, 1.0).time_interval_in_range(3.0, 2.0)


class TestLinearMotion2D:
    def test_position(self):
        motion = LinearMotion2D(x0=0, y0=10, vx=1.0, vy=-2.0, t0=0.0)
        assert motion.position(3.0) == (3.0, 4.0)

    def test_axis_projections(self):
        motion = LinearMotion2D(x0=1, y0=2, vx=3, vy=4, t0=5)
        assert motion.x_motion == LinearMotion1D(1, 3, 5)
        assert motion.y_motion == LinearMotion1D(2, 4, 5)

    def test_speed(self):
        motion = LinearMotion2D(0, 0, 3.0, 4.0)
        assert motion.speed == 5.0


class TestTerrains:
    def test_terrain_1d(self):
        terrain = Terrain1D(100.0)
        assert terrain.contains(0.0)
        assert terrain.contains(100.0)
        assert not terrain.contains(-0.1)
        with pytest.raises(InvalidMotionError):
            Terrain1D(0.0)

    def test_terrain_2d(self):
        terrain = Terrain2D(10.0, 20.0)
        assert terrain.contains(5, 15)
        assert not terrain.contains(11, 5)
        with pytest.raises(InvalidMotionError):
            Terrain2D(10.0, -1.0)


class TestMotionModel:
    def make(self):
        return MotionModel(Terrain1D(1000.0), v_min=0.16, v_max=1.66)

    def test_t_period(self):
        model = self.make()
        assert model.t_period == pytest.approx(1000.0 / 0.16)

    def test_is_moving_band(self):
        model = self.make()
        assert model.is_moving(LinearMotion1D(0, 0.5))
        assert model.is_moving(LinearMotion1D(0, -1.66))
        assert not model.is_moving(LinearMotion1D(0, 0.01))
        assert not model.is_moving(LinearMotion1D(0, 2.0))

    def test_validate(self):
        model = self.make()
        model.validate(LinearMotion1D(500.0, 1.0))
        with pytest.raises(InvalidMotionError):
            model.validate(LinearMotion1D(500.0, 5.0))
        with pytest.raises(InvalidMotionError):
            model.validate(LinearMotion1D(-5.0, 1.0))

    def test_bad_speed_band(self):
        with pytest.raises(InvalidMotionError):
            MotionModel(Terrain1D(100.0), v_min=2.0, v_max=1.0)
        with pytest.raises(InvalidMotionError):
            MotionModel(Terrain1D(100.0), v_min=0.0, v_max=1.0)


class TestQueries:
    def test_mor_query_validation(self):
        MORQuery1D(0, 10, 5, 8)
        with pytest.raises(InvalidQueryError):
            MORQuery1D(10, 0, 5, 8)
        with pytest.raises(InvalidQueryError):
            MORQuery1D(0, 10, 8, 5)

    def test_extents(self):
        q = MORQuery1D(0, 10, 5, 8)
        assert q.y_extent == 10
        assert q.time_extent == 3

    def test_mor1_as_mor(self):
        q = MOR1Query(0, 10, 7.0)
        mor = q.as_mor()
        assert (mor.t1, mor.t2) == (7.0, 7.0)
        with pytest.raises(InvalidQueryError):
            MOR1Query(10, 0, 7.0)

    def test_2d_projections(self):
        q = MORQuery2D(0, 10, 20, 30, 1, 2)
        assert q.x_query == MORQuery1D(0, 10, 1, 2)
        assert q.y_query == MORQuery1D(20, 30, 1, 2)
        with pytest.raises(InvalidQueryError):
            MORQuery2D(10, 0, 20, 30, 1, 2)
        with pytest.raises(InvalidQueryError):
            MORQuery2D(0, 10, 30, 20, 1, 2)
        with pytest.raises(InvalidQueryError):
            MORQuery2D(0, 10, 20, 30, 2, 1)
