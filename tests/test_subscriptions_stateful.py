"""Stateful differential test: delta streams vs the naive oracle.

A seeded random program interleaves register/report/deregister with
clock advances against 50+ live subscriptions and checks, at every
tick, the three-way agreement the subscription layer promises:

    naive one-shot re-evaluation
        == the manager's incremental result set
        == the initial result replayed through the emitted deltas

Band subscriptions are checked against the *service's own* one-shot
queries (exercising the index path); proximity subscriptions against
an independent brute-force oracle over the motions this test itself
applied — fully independent of the manager's bookkeeping.

Coverage: 3 seeds x shard counts {1, 2, 4, 7}, mirroring the service
differential suite.
"""

import random

import pytest

from repro.core.model import LinearMotion1D
from repro.service import ShardedMotionService, SubscriptionManager, replay_deltas

pytestmark = pytest.mark.subscription

Y_MAX, V_MIN, V_MAX = 1000.0, 0.16, 1.66

STEPS = 120
ADVANCE_EVERY = 8
BAND_SUBS = 50
PROXIMITY_SUBS = 6


def random_motion(rng, now):
    speed = rng.uniform(V_MIN, V_MAX)
    direction = 1 if rng.random() < 0.5 else -1
    return (
        rng.uniform(0.0, Y_MAX),
        direction * speed,
        now + rng.uniform(0.0, 0.5),
    )


def brute_force_pairs(motions, d, t):
    oids = sorted(motions)
    return {
        (oids[i], oids[j])
        for i in range(len(oids))
        for j in range(i + 1, len(oids))
        if abs(motions[oids[i]].position(t) - motions[oids[j]].position(t))
        <= d
    }


@pytest.mark.parametrize("shards", [1, 2, 4, 7])
@pytest.mark.parametrize("seed", [7, 23, 61])
def test_delta_streams_replay_to_naive_oracle(shards, seed):
    rng = random.Random(seed * 1009 + shards)
    service = ShardedMotionService(Y_MAX, V_MIN, V_MAX, shards=shards)

    motions = {}  # the test's own authoritative motion table
    next_oid = 0
    now = 0.0
    for _ in range(40):
        y0, v, t0 = random_motion(rng, 0.0)
        service.register(next_oid, y0, v, 0.0)
        next_oid += 1
    motions = service.motion_snapshot()

    manager = SubscriptionManager(service)
    subs = {}  # sid -> ("snapshot"|"within"|"proximity", params)
    for i in range(BAND_SUBS):
        y1 = rng.uniform(0.0, Y_MAX * 0.85)
        y2 = y1 + rng.uniform(0.05, 0.15) * Y_MAX
        if i % 2 == 0:
            subs[manager.subscribe_snapshot(y1, y2)] = (
                "snapshot", (y1, y2)
            )
        else:
            h = rng.uniform(2.0, 10.0)
            subs[manager.subscribe_within(y1, y2, h)] = (
                "within", (y1, y2, h)
            )
    for _ in range(PROXIMITY_SUBS):
        d = rng.uniform(3.0, 15.0)
        subs[manager.subscribe_proximity(d)] = ("proximity", (d,))
    assert len(subs) == BAND_SUBS + PROXIMITY_SUBS >= 50

    replayed = {sid: set(manager.result(sid)) for sid in subs}

    def check_all_subscriptions():
        for sid, (kind, params) in subs.items():
            replayed[sid] = replay_deltas(
                replayed[sid], manager.drain_deltas(sid)
            )
            if kind == "snapshot":
                y1, y2 = params
                naive = service.snapshot_at(y1, y2, now)
            elif kind == "within":
                y1, y2, h = params
                naive = service.within(y1, y2, now, now + h)
            else:
                (d,) = params
                naive = brute_force_pairs(motions, d, now)
            incremental = manager.result(sid)
            assert incremental == naive, (sid, kind, params, now)
            assert replayed[sid] == naive, (sid, kind, params, now)

    for step in range(STEPS):
        roll = rng.random()
        live = sorted(motions)
        if roll < 0.55 and live:
            oid = rng.choice(live)
            y0, v, t0 = random_motion(rng, now)
            service.report(oid, y0, v, t0)
            motions[oid] = LinearMotion1D(y0, v, t0)
        elif roll < 0.8 or len(live) < 15:
            y0, v, t0 = random_motion(rng, now)
            service.register(next_oid, y0, v, t0)
            motions[next_oid] = LinearMotion1D(y0, v, t0)
            next_oid += 1
        else:
            oid = rng.choice(live)
            service.deregister(oid)
            del motions[oid]
        if step % ADVANCE_EVERY == ADVANCE_EVERY - 1:
            now += rng.uniform(0.5, 3.0)
            manager.advance(now)
            check_all_subscriptions()

    now += rng.uniform(0.5, 3.0)
    manager.advance(now)
    check_all_subscriptions()

    counters = manager.metrics.snapshot()["counters"]
    assert counters["subscription_anomalies"] == 0
    manager.close()
