"""Worker-death chaos: a SIGKILLed pool worker never hangs a batch.

The pool's crash contract, end to end:

* the pool itself detects the dead lane while gathering, salvages the
  completed sub-batches, respawns the worker with fresh queues, and
  raises :class:`WorkerCrashError` naming exactly the lost shards;
* the plain service recomputes the lost lanes inline — callers see
  correct answers and only the metrics betray the crash;
* the fault-tolerant service maps the lost lanes onto the existing
  ``kill_shard`` / degraded machinery: the affected batch degrades to
  :class:`PartialResult` (never a deadlock, never a silently wrong
  full answer) and ``recover_shard`` restores full service while the
  respawned pool keeps running at width.
"""

import os
import random
import signal
import time

import pytest

from repro.errors import DegradedResultWarning
from repro.service import (
    FaultTolerantMotionService,
    PartialResult,
    ShardedMotionService,
    WorkerCrashError,
    WorkerPool,
)
from repro.vector.ops import Nearest, RegisterOp, SnapshotAt, Within
from repro.vector.shm import SharedMotionColumns

pytestmark = [pytest.mark.parallel, pytest.mark.chaos]

Y_MAX, V_MIN, V_MAX = 1000.0, 0.16, 1.66


def populate(service, seed, n=120):
    rng = random.Random(seed)
    ops = []
    for oid in range(n):
        speed = rng.uniform(V_MIN, V_MAX) * rng.choice([1.0, -1.0])
        ops.append(RegisterOp(oid, rng.uniform(0, Y_MAX), speed, 0.0))
    service.apply_batch(ops)
    return rng


def fresh_queries(rng, count=9):
    """New ops every call: repeated identical batches would hit the
    result cache and never reach the pool."""
    ops = []
    for q in range(count):
        t1 = rng.uniform(5, 40)
        y1 = rng.uniform(0, Y_MAX - 120)
        kind = q % 3
        if kind == 0:
            ops.append(Within(y1, y1 + rng.uniform(10, 120), t1, t1 + 10))
        elif kind == 1:
            ops.append(SnapshotAt(y1, y1 + rng.uniform(10, 120), t1))
        else:
            ops.append(Nearest(y1, t1, k=rng.randint(1, 5)))
    return ops


def sigkill(pid):
    os.kill(pid, signal.SIGKILL)
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return
        time.sleep(0.01)


def test_pool_raises_named_crash_and_respawns():
    pool = WorkerPool(2)
    store = SharedMotionColumns()
    rng = random.Random(61)
    try:
        from repro.core.model import LinearMotion1D

        for oid in range(60):
            store.upsert(
                oid,
                LinearMotion1D(
                    rng.uniform(0, Y_MAX), rng.uniform(V_MIN, V_MAX), 0.0
                ),
            )
        ops = fresh_queries(rng, 6)
        # Warm both lanes so the kill hits a worker that has already
        # imported the kernel stack (the expensive first task).
        pool.query_shards(
            [(0, store.segment_name, ops), (1, store.segment_name, ops)]
        )
        victim = pool.worker_pids()[0]  # lane of shard 0 (0 % 2)
        sigkill(victim)
        started = time.monotonic()
        with pytest.raises(WorkerCrashError) as excinfo:
            pool.query_shards(
                [(0, store.segment_name, ops), (1, store.segment_name, ops)]
            )
        assert time.monotonic() - started < 30.0  # detected, not hung
        assert excinfo.value.shards == [0]
        assert 1 in excinfo.value.partial  # the live lane's answers
        assert pool.respawns == 1
        assert pool.worker_pids()[0] != victim
        # The respawned lane serves the next batch at full width.
        answers, _ = pool.query_shards(
            [(0, store.segment_name, ops), (1, store.segment_name, ops)]
        )
        assert answers[0] == answers[1] == excinfo.value.partial[1]
    finally:
        store.close()
        pool.close()


def test_plain_service_recomputes_lost_lanes_inline():
    service = ShardedMotionService(
        Y_MAX, V_MIN, V_MAX, shards=4, workers=2, cache_capacity=0
    )
    oracle = ShardedMotionService(
        Y_MAX, V_MIN, V_MAX, shards=4, cache_capacity=0
    )
    try:
        rng = populate(service, 67)
        populate(oracle, 67)
        service.query_batch(fresh_queries(rng, 6))  # warm the lanes
        sigkill(service.pool.worker_pids()[1])
        check = fresh_queries(rng)
        assert service.query_batch(check) == oracle.query_batch(check)
        metrics = service.metrics
        assert metrics.counter("parallel_worker_deaths").value >= 1
        assert metrics.counter("parallel_inline_fallbacks").value >= 1
        assert service.pool.respawns == 1
        # And the pool is healthy again: no further deaths next batch.
        deaths = metrics.counter("parallel_worker_deaths").value
        again = fresh_queries(rng)
        assert service.query_batch(again) == oracle.query_batch(again)
        assert metrics.counter("parallel_worker_deaths").value == deaths
    finally:
        service.close()


def test_ft_service_degrades_then_recovers():
    # replication_factor=1: no replicas to hide the dead shards, so
    # the degraded machinery must show itself.
    service = FaultTolerantMotionService(
        Y_MAX, V_MIN, V_MAX, shards=4, replication_factor=1, workers=2
    )
    oracle = ShardedMotionService(
        Y_MAX, V_MIN, V_MAX, shards=4, cache_capacity=0
    )
    try:
        rng = populate(service, 71)
        populate(oracle, 71)
        service.query_batch(fresh_queries(rng, 6))  # warm the lanes
        victim = service.pool.worker_pids()[0]
        sigkill(victim)
        started = time.monotonic()
        with pytest.warns(DegradedResultWarning):
            degraded = service.query_batch(fresh_queries(rng))
        assert time.monotonic() - started < 30.0  # degraded, not hung
        # Lane 0 of a 2-wide pool owns shards {0, 2}: both were lost,
        # so every answer is partial and names the dead shards.
        assert sorted(service.down_shards()) == [0, 2]
        assert all(isinstance(r, PartialResult) for r in degraded)
        assert all(
            r.unavailable_shards == (0, 2) for r in degraded
        )
        assert service.pool.respawns == 1
        for shard in (0, 2):
            service.recover_shard(shard)
        assert service.down_shards() == []
        check = fresh_queries(rng)
        assert service.query_batch(check) == oracle.query_batch(check)
    finally:
        service.close()


def test_ft_replicas_absorb_worker_death():
    """With replication, the shards a dead worker takes down are still
    covered: the batch completes with full, correct answers — only the
    down-shard list and the metrics betray the crash."""
    service = FaultTolerantMotionService(
        Y_MAX, V_MIN, V_MAX, shards=4, replication_factor=2, workers=2
    )
    oracle = ShardedMotionService(
        Y_MAX, V_MIN, V_MAX, shards=4, cache_capacity=0
    )
    try:
        rng = populate(service, 73)
        populate(oracle, 73)
        service.query_batch(fresh_queries(rng, 6))  # warm the lanes
        sigkill(service.pool.worker_pids()[0])
        check = fresh_queries(rng)
        answers = service.query_batch(check)
        assert sorted(service.down_shards()) == [0, 2]
        assert not any(isinstance(r, PartialResult) for r in answers)
        assert answers == oracle.query_batch(check)
        assert service.pool.respawns == 1
        for shard in (0, 2):
            service.recover_shard(shard)
        assert service.down_shards() == []
    finally:
        service.close()
