"""White-box tests for the Lemma 4 persistent structure internals."""

import random

import pytest

from repro.errors import InvalidQueryError
from repro.io_sim import DiskSimulator
from repro.kinetic.persistent import PersistentOrderIndex, _RootHistory


class TestRootHistory:
    def test_lookup_latest_at_or_before(self):
        disk = DiskSimulator()
        history = _RootHistory(disk, capacity=4)
        for t, pid in [(0.0, 10), (5.0, 11), (9.0, 12)]:
            history.append(t, pid)
        assert history.root_at(0.0) == 10
        assert history.root_at(4.9) == 10
        assert history.root_at(5.0) == 11
        assert history.root_at(100.0) == 12

    def test_before_first_raises(self):
        disk = DiskSimulator()
        history = _RootHistory(disk, capacity=4)
        history.append(10.0, 1)
        with pytest.raises(InvalidQueryError):
            history.root_at(9.9)

    def test_time_order_enforced(self):
        history = _RootHistory(DiskSimulator(), capacity=4)
        history.append(5.0, 1)
        with pytest.raises(ValueError):
            history.append(4.0, 2)
        history.append(5.0, 3)  # equal times are fine (same-instant events)
        assert history.root_at(5.0) == 3

    def test_spans_many_pages(self):
        disk = DiskSimulator()
        history = _RootHistory(disk, capacity=4)
        for t in range(40):
            history.append(float(t), 100 + t)
        assert len(history._page_pids) == 10
        for t in range(40):
            assert history.root_at(t + 0.5) == 100 + t

    def test_lookup_costs_one_page_read(self):
        disk = DiskSimulator(buffer_pages=0)
        history = _RootHistory(disk, capacity=4)
        for t in range(40):
            history.append(float(t), t)
        before = disk.stats.snapshot()
        history.root_at(17.3)
        delta = disk.stats.snapshot() - before
        assert delta.reads == 1


class TestVersionPages:
    def test_version_pages_never_overflow(self):
        """Appends must version a full page rather than exceed capacity."""
        rng = random.Random(5)
        disk = DiskSimulator()
        capacity = 6
        index = PersistentOrderIndex(
            disk, list(range(8)), 0.0, page_capacity=capacity
        )
        t = 0.0
        for _ in range(200):
            t += 1.0
            index.apply_swap(rng.randrange(7), t)
        for pid in range(disk.pages_in_use * 2):
            page = disk.peek(pid)
            if page is not None:
                assert len(page.items) <= capacity

    def test_snapshot_plus_log_layout(self):
        index = PersistentOrderIndex(
            DiskSimulator(), list("abcd"), 0.0, page_capacity=8
        )
        index.apply_swap(0, 1.0)
        leaf = index._leaf_for(0)
        page = index.disk.peek(leaf.current_pid)
        kinds = [record[0] for record in page.items]
        assert kinds[0] == "snap"
        assert "occ" in kinds

    def test_height_grows_with_n(self):
        small = PersistentOrderIndex(
            DiskSimulator(), list(range(8)), 0.0, page_capacity=8
        )
        large = PersistentOrderIndex(
            DiskSimulator(), list(range(512)), 0.0, page_capacity=8
        )
        assert large.height > small.height

    def test_current_occupant_reads_latest(self):
        index = PersistentOrderIndex(
            DiskSimulator(), list("abc"), 0.0, page_capacity=8
        )
        assert index.current_occupant(0) == "a"
        index.apply_swap(0, 1.0)
        assert index.current_occupant(0) == "b"
        assert index.current_occupant(1) == "a"
        with pytest.raises(InvalidQueryError):
            index.current_occupant(99)

    def test_query_io_logarithmic_after_heavy_history(self):
        """Past-version queries stay cheap even with a long history."""
        rng = random.Random(11)
        disk = DiskSimulator(buffer_pages=0)
        n = 128
        index = PersistentOrderIndex(
            disk, list(range(n)), 0.0, page_capacity=16
        )
        t = 0.0
        for _ in range(2000):
            t += 1.0
            index.apply_swap(rng.randrange(n - 1), t)

        def loc(oid, when):
            return float(oid)  # location model irrelevant for I/O shape

        for when in (0.5, 1000.0, 1999.0):
            disk.clear_buffer()
            before = disk.stats.snapshot()
            index.range_query(when, 60.0, 70.0, loc)
            delta = disk.stats.snapshot() - before
            assert delta.reads <= 14, f"too many reads at t={when}"
