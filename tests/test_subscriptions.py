"""Unit tests for continuous subscriptions (repro.service.continuous).

Crossing times here are hand-computed from the linear motion model so
every assertion pins an exact event time: an object at ``y0=100,
v=1.0`` enters ``[200, 300]`` at ``t=100`` and exits at ``t=200``.
"""

import pytest

from repro.engine import MotionDatabase
from repro.errors import InvalidQueryError, ObjectNotFoundError
from repro.service import (
    FaultTolerantMotionService,
    ShardedMotionService,
    SubscriptionManager,
    replay_deltas,
)
from repro.service.continuous import ENTER, EXIT, SubscriptionDelta

pytestmark = pytest.mark.subscription

Y_MAX, V_MIN, V_MAX = 1000.0, 0.16, 1.66


def make_service(**kwargs):
    return ShardedMotionService(Y_MAX, V_MIN, V_MAX, shards=3, **kwargs)


class TestBandSubscriptions:
    def test_snapshot_crossing_times(self):
        svc = make_service()
        svc.register(1, 100.0, 1.0, 0.0)
        mgr = SubscriptionManager(svc)
        sid = mgr.subscribe_snapshot(200.0, 300.0)
        assert mgr.result(sid) == frozenset()
        fired = mgr.advance(150.0)
        assert [(d.time, d.kind, d.key) for d in fired] == [
            (100.0, ENTER, 1)
        ]
        assert mgr.result(sid) == {1}
        fired = mgr.advance(250.0)
        assert [(d.time, d.kind, d.key) for d in fired] == [(200.0, EXIT, 1)]
        assert mgr.result(sid) == frozenset()

    def test_within_stretches_left_by_horizon(self):
        svc = make_service()
        svc.register(1, 100.0, 1.0, 0.0)
        mgr = SubscriptionManager(svc)
        sid = mgr.subscribe_within(200.0, 300.0, horizon=50.0)
        # Visible from t=50 (window [50, 100] first touches the band)
        # until t=200 (the crossing window's right edge).
        assert [d.time for d in mgr.advance(60.0)] == [50.0]
        assert mgr.result(sid) == {1}
        assert [d.time for d in mgr.advance(300.0)] == [200.0]
        assert mgr.result(sid) == frozenset()

    def test_initial_membership_counts_objects_already_inside(self):
        svc = make_service()
        svc.register(1, 250.0, 1.0, 0.0)  # inside [200, 300] right now
        svc.register(2, 0.0, 1.0, 0.0)
        mgr = SubscriptionManager(svc)
        sid = mgr.subscribe_snapshot(200.0, 300.0)
        assert mgr.result(sid) == {1}
        # No delta for the initial membership: deltas are changes.
        assert mgr.drain_deltas(sid) == []

    def test_inclusive_boundaries_enter_at_exit_after(self):
        svc = make_service()
        svc.register(1, 100.0, 1.0, 0.0)
        mgr = SubscriptionManager(svc)
        sid = mgr.subscribe_snapshot(200.0, 300.0)
        mgr.advance(100.0)  # exactly the entry crossing: inclusive
        assert mgr.result(sid) == {1}
        mgr.advance(200.0)  # exactly the exit crossing: still inside
        assert mgr.result(sid) == {1}
        assert mgr.reevaluate(sid) == {1}
        mgr.advance(200.0000001)
        assert mgr.result(sid) == frozenset()

    def test_stationary_object_never_schedules_events(self):
        svc = make_service()
        svc.register(1, 250.0, 0.0, 0.0)  # parked inside the band
        svc.register(2, 500.0, 0.0, 0.0)  # parked outside
        mgr = SubscriptionManager(svc)
        sid = mgr.subscribe_snapshot(200.0, 300.0)
        assert mgr.result(sid) == {1}
        assert mgr.stats()["heap_events"] == 0
        assert mgr.advance(1000.0) == []
        assert mgr.result(sid) == {1}


class TestProximitySubscriptions:
    def test_pair_crossing_window(self):
        svc = make_service()
        svc.register(1, 0.0, 1.0, 0.0)
        svc.register(2, 100.0, -1.0, 0.0)  # gap 100 - 2t: within 10 on [45, 55]
        mgr = SubscriptionManager(svc)
        sid = mgr.subscribe_proximity(10.0)
        assert mgr.result(sid) == frozenset()
        assert [d.time for d in mgr.advance(50.0)] == [45.0]
        assert mgr.result(sid) == {(1, 2)}
        assert [d.time for d in mgr.advance(60.0)] == [55.0]
        assert mgr.result(sid) == frozenset()

    def test_parallel_pair_inside_distance_forever(self):
        svc = make_service()
        svc.register(1, 100.0, 1.0, 0.0)
        svc.register(2, 104.0, 1.0, 0.0)  # constant gap 4
        mgr = SubscriptionManager(svc)
        sid = mgr.subscribe_proximity(5.0)
        assert mgr.result(sid) == {(1, 2)}
        mgr.advance(500.0)
        assert mgr.result(sid) == {(1, 2)}
        assert mgr.stats()["heap_events"] == 0  # no finite crossing


class TestUpdatesInvalidate:
    def test_report_cancels_scheduled_entry(self):
        svc = make_service()
        svc.register(1, 100.0, 1.0, 0.0)
        mgr = SubscriptionManager(svc)
        sid = mgr.subscribe_snapshot(200.0, 300.0)
        mgr.advance(50.0)
        svc.report(1, 100.0, -1.0, 50.0)  # turn around before entering
        assert mgr.advance(150.0) == []  # superseded event is inert
        assert mgr.result(sid) == frozenset()
        counters = mgr.metrics.snapshot()["counters"]
        assert counters["subscription_events_stale"] >= 1
        assert counters["subscription_invalidations"] >= 1

    def test_report_moving_member_out_emits_exit_now(self):
        svc = make_service()
        svc.register(1, 250.0, 0.0, 0.0)
        mgr = SubscriptionManager(svc)
        sid = mgr.subscribe_snapshot(200.0, 300.0)
        mgr.advance(10.0)
        svc.report(1, 600.0, 1.0, 10.0)
        assert mgr.result(sid) == frozenset()
        deltas = mgr.drain_deltas(sid)
        assert [(d.time, d.kind, d.key) for d in deltas] == [
            (10.0, EXIT, 1)
        ]

    def test_register_and_deregister_update_results(self):
        svc = make_service()
        mgr = SubscriptionManager(svc)
        sid = mgr.subscribe_snapshot(200.0, 300.0)
        svc.register(7, 250.0, 0.5, 0.0)
        assert mgr.result(sid) == {7}
        assert [d.kind for d in mgr.drain_deltas(sid)] == [ENTER]
        svc.deregister(7)
        assert mgr.result(sid) == frozenset()
        assert [d.kind for d in mgr.drain_deltas(sid)] == [EXIT]

    def test_deregister_drops_pairs(self):
        svc = make_service()
        svc.register(1, 100.0, 1.0, 0.0)
        svc.register(2, 104.0, 1.0, 0.0)
        mgr = SubscriptionManager(svc)
        sid = mgr.subscribe_proximity(5.0)
        assert mgr.result(sid) == {(1, 2)}
        svc.deregister(2)
        assert mgr.result(sid) == frozenset()


class TestLifecycleAndErrors:
    def test_advance_backwards_rejected(self):
        svc = make_service()
        mgr = SubscriptionManager(svc)
        mgr.advance(10.0)
        with pytest.raises(InvalidQueryError):
            mgr.advance(5.0)

    def test_bad_parameters_rejected(self):
        mgr = SubscriptionManager(make_service())
        with pytest.raises(InvalidQueryError):
            mgr.subscribe_snapshot(300.0, 200.0)
        with pytest.raises(InvalidQueryError):
            mgr.subscribe_within(0.0, 100.0, horizon=-1.0)
        with pytest.raises(InvalidQueryError):
            mgr.subscribe_proximity(-0.5)

    def test_unknown_subscription_rejected(self):
        mgr = SubscriptionManager(make_service())
        with pytest.raises(ObjectNotFoundError):
            mgr.result(99)
        with pytest.raises(ObjectNotFoundError):
            mgr.drain_deltas(99)
        with pytest.raises(ObjectNotFoundError):
            mgr.cancel(99)

    def test_cancel_returns_pending_deltas(self):
        svc = make_service()
        svc.register(1, 100.0, 1.0, 0.0)
        mgr = SubscriptionManager(svc)
        sid = mgr.subscribe_snapshot(200.0, 300.0)
        mgr.advance(150.0)
        pending = mgr.cancel(sid)
        assert [(d.kind, d.key) for d in pending] == [(ENTER, 1)]
        with pytest.raises(ObjectNotFoundError):
            mgr.result(sid)
        # Heap entries of the cancelled subscription are inert.
        assert mgr.advance(500.0) == []

    def test_close_detaches_from_service(self):
        svc = make_service()
        svc.register(1, 250.0, 0.0, 0.0)
        mgr = SubscriptionManager(svc)
        sid = mgr.subscribe_snapshot(200.0, 300.0)
        mgr.close()
        svc.report(1, 600.0, 1.0, 0.0)  # no longer observed
        assert mgr.result(sid) == {1}
        mgr.close()  # idempotent

    def test_works_against_plain_motion_database(self):
        db = MotionDatabase(Y_MAX, V_MIN, V_MAX)
        db.register(1, 100.0, 1.0, 0.0)
        mgr = SubscriptionManager(db)
        sid = mgr.subscribe_snapshot(200.0, 300.0)
        db.register(2, 250.0, 0.0, 0.0)
        assert mgr.result(sid) == {2}
        assert [d.time for d in mgr.advance(150.0)] == [100.0]
        assert mgr.result(sid) == {1, 2}
        assert mgr.reevaluate(sid) == {1, 2}

    def test_describe_and_stats(self):
        svc = make_service()
        mgr = SubscriptionManager(svc)
        sid = mgr.subscribe_within(0.0, 100.0, horizon=5.0)
        view = mgr.subscription(sid)
        assert view["kind"] == "within"
        assert view["params"] == {"y1": 0.0, "y2": 100.0, "horizon": 5.0}
        stats = mgr.stats()
        assert stats["subscriptions"] == 1
        assert stats["by_kind"] == {"within": 1}

    def test_counters_surface_in_service_stats(self):
        svc = make_service()
        svc.register(1, 100.0, 1.0, 0.0)
        mgr = SubscriptionManager(svc)
        mgr.subscribe_snapshot(200.0, 300.0)
        mgr.advance(150.0)
        counters = svc.service_stats()["metrics"]["counters"]
        assert counters["subscription_index_probes"] == 1
        assert counters["subscription_events_fired"] == 1
        assert counters["subscription_deltas_emitted"] == 1


class TestReplayDeltas:
    def test_replays_to_final_set(self):
        deltas = [
            SubscriptionDelta(1.0, ENTER, 1, 1),
            SubscriptionDelta(2.0, ENTER, 2, 1),
            SubscriptionDelta(3.0, EXIT, 1, 1),
        ]
        assert replay_deltas(set(), deltas) == {2}

    def test_double_enter_rejected(self):
        with pytest.raises(ValueError, match="double enter"):
            replay_deltas({1}, [SubscriptionDelta(1.0, ENTER, 1, 1)])

    def test_exit_without_enter_rejected(self):
        with pytest.raises(ValueError, match="exit without enter"):
            replay_deltas(set(), [SubscriptionDelta(1.0, EXIT, 1, 1)])


class TestDegradation:
    def test_dead_shard_marks_subscriptions_stale_not_raising(self):
        svc = FaultTolerantMotionService(
            Y_MAX, V_MIN, V_MAX, shards=3, replication_factor=1
        )
        for oid in range(12):
            svc.register(oid, 50.0 * oid, 1.0, 0.0)
        mgr = SubscriptionManager(svc)
        sid = mgr.subscribe_snapshot(0.0, 1000.0)
        assert not mgr.is_stale(sid)
        svc.kill_shard(1)
        mgr.advance(5.0)  # degrades, never raises
        assert mgr.is_stale(sid)
        # The incremental result still reflects every acknowledged
        # write, even though one replica is unreachable.
        assert mgr.result(sid) == set(range(12))
        svc.recover_shard(1)
        mgr.advance(6.0)
        assert not mgr.is_stale(sid)
        assert mgr.reevaluate(sid) == mgr.result(sid)
