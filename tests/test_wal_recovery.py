"""Crash-at-every-point recovery property test (satellite of ISSUE 3).

A :class:`ShardWAL` is a redo log of *committed* operations: the shard
applies an update, then appends the record.  The property under test:
no matter where the crash lands — after any prefix of the log, across
checkpoint boundaries — :meth:`ShardWAL.recover` rebuilds a database
whose answers (and serialized population bytes) are identical to a
never-crashed :class:`MotionDatabase` that executed the same committed
prefix.
"""

import random

import pytest

from repro.engine import MotionDatabase
from repro.errors import InvalidMotionError
from repro.service import ShardWAL
from repro.workloads.serialization import population_to_json

Y_MAX, V_MIN, V_MAX = 1000.0, 0.16, 1.66


def factory() -> MotionDatabase:
    return MotionDatabase(Y_MAX, V_MIN, V_MAX, method="forest")


def seeded_trace(seed: int, events: int):
    """A valid mixed insert/update/delete trace (tracks live oids)."""
    rng = random.Random(seed)
    live = []
    next_oid = 0
    now = 0.0
    trace = []
    for _ in range(events):
        now += rng.uniform(0.1, 1.5)
        roll = rng.random()
        if not live or roll < 0.4:
            oid, next_oid = next_oid, next_oid + 1
            live.append(oid)
            kind = "insert"
        elif roll < 0.85:
            oid = rng.choice(live)
            kind = "update"
        else:
            oid = live.pop(rng.randrange(len(live)))
            trace.append({"kind": "delete", "oid": oid})
            continue
        trace.append({
            "kind": kind,
            "oid": oid,
            "y0": rng.uniform(0.0, Y_MAX),
            "v": rng.uniform(V_MIN, V_MAX) * rng.choice((-1.0, 1.0)),
            "t0": now,
        })
    return trace


def assert_equivalent(recovered: MotionDatabase, oracle: MotionDatabase):
    """Answers and serialized state must match the never-crashed DB."""
    assert recovered.now == oracle.now
    assert len(recovered) == len(oracle)
    # Byte-identical population (oids, motions, serialization order).
    assert population_to_json(recovered.objects()) == population_to_json(
        oracle.objects()
    )
    now = oracle.now
    for y1, y2, t1, t2 in (
        (0.0, Y_MAX, 0.0, now + 5.0),
        (100.0, 400.0, now, now + 10.0),
        (650.0, 700.0, max(0.0, now - 2.0), now + 2.0),
    ):
        assert recovered.within(y1, y2, t1, t2) == oracle.within(
            y1, y2, t1, t2
        )
    assert recovered.snapshot_at(0.0, Y_MAX / 2, now) == oracle.snapshot_at(
        0.0, Y_MAX / 2, now
    )
    for k in (1, 3):
        assert recovered.nearest(Y_MAX / 3, now + 1.0, k) == oracle.nearest(
            Y_MAX / 3, now + 1.0, k
        )
    assert recovered.proximity_pairs(
        25.0, now, now + 5.0
    ) == oracle.proximity_pairs(25.0, now, now + 5.0)


@pytest.mark.parametrize("seed", [3, 11])
def test_recovery_after_every_prefix_matches_oracle(seed):
    """Kill after each committed record; recovery must equal the oracle.

    ``checkpoint_every=8`` with ~40 events forces several checkpoint
    truncations, so prefixes land on every interesting boundary:
    empty log, mid-tail, exactly-at-checkpoint, just-after-checkpoint.
    """
    trace = seeded_trace(seed, events=40)
    live_db = factory()
    oracle = factory()
    wal = ShardWAL(checkpoint_every=8)
    # Crash point 0: nothing committed yet.
    assert_equivalent(wal.recover(factory), oracle)
    for event in trace:
        # Committed-operation protocol: apply, then log, then maybe
        # checkpoint — same ordering the service uses under the lock.
        live_db.apply_event(event)
        oracle.apply_event(event)
        wal.append(**event)
        wal.maybe_checkpoint(live_db)
        assert_equivalent(wal.recover(factory), oracle)
    assert wal.snapshot()["checkpoints"] >= 3
    assert wal.snapshot()["recoveries"] == len(trace) + 1


def test_recover_restores_clock_past_departed_objects():
    """The clock survives even when its latest reporter deregistered."""
    db = factory()
    wal = ShardWAL(checkpoint_every=4)
    db.apply_event({"kind": "insert", "oid": 1, "y0": 10.0, "v": 1.0,
                    "t0": 0.0})
    wal.append(kind="insert", oid=1, y0=10.0, v=1.0, t0=0.0)
    db.apply_event({"kind": "insert", "oid": 2, "y0": 500.0, "v": -1.0,
                    "t0": 99.0})
    wal.append(kind="insert", oid=2, y0=500.0, v=-1.0, t0=99.0)
    db.apply_event({"kind": "delete", "oid": 2})
    wal.append(kind="delete", oid=2)
    wal.checkpoint(db)  # checkpoint holds now=99.0 but only object 1
    recovered = wal.recover(factory)
    assert recovered.now == 99.0
    assert 1 in recovered and 2 not in recovered


def test_recover_replays_tail_in_sequence_order():
    """A post-checkpoint tail replays on top of the checkpoint state."""
    db = factory()
    wal = ShardWAL(checkpoint_every=100)  # manual checkpoints only
    db.apply_event({"kind": "insert", "oid": 7, "y0": 100.0, "v": 0.5,
                    "t0": 0.0})
    wal.append(kind="insert", oid=7, y0=100.0, v=0.5, t0=0.0)
    wal.checkpoint(db)
    assert wal.tail() == []
    db.apply_event({"kind": "update", "oid": 7, "y0": 250.0, "v": -0.5,
                    "t0": 4.0})
    wal.append(kind="update", oid=7, y0=250.0, v=-0.5, t0=4.0)
    recovered = wal.recover(factory)
    assert population_to_json(recovered.objects()) == population_to_json(
        db.objects()
    )
    assert recovered.now == 4.0


def test_apply_event_rejects_unknown_kind():
    with pytest.raises(InvalidMotionError):
        factory().apply_event({"kind": "compact"})
