"""Tests for the `python -m repro` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_defaults(self):
        args = build_parser().parse_args(["figures"])
        assert args.sizes == [1000, 2000, 4000]
        assert args.ticks == 40
        assert args.c == [4, 6, 8]

    def test_custom_arguments(self):
        args = build_parser().parse_args(
            ["figures", "--sizes", "100", "200", "--ticks", "5", "-c", "2"]
        )
        assert args.sizes == [100, 200]
        assert args.c == [2]

    def test_serve_bench_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.n == 2000
        assert args.shards == 4
        assert args.router == "hash"
        assert args.workers == 0

    def test_serve_bench_rejects_unknown_router(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-bench", "--router", "psychic"])

    def test_serve_bench_rejects_bad_sizes(self, capsys):
        assert main(["serve-bench", "--n", "0"]) == 2
        assert "need at least 1 object" in capsys.readouterr().err
        assert main(["serve-bench", "--shards", "0"]) == 2
        assert "need at least 1 shard" in capsys.readouterr().err

    def test_serve_bench_rejects_overwide_replication(self, capsys):
        assert main(
            ["serve-bench", "--shards", "2", "--replication", "3"]
        ) == 2
        assert "replication 3 exceeds shard count 2" in (
            capsys.readouterr().err
        )


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("dual-kdtree", "hough-y-forest", "segment-rstar",
                     "partition-tree"):
            assert name in out

    def test_csweep_small(self, capsys):
        assert main(["csweep", "-n", "200", "-c", "2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Equation (2)" in out
        assert "waste" in out

    def test_mor1_small(self, capsys):
        assert main(["mor1", "--sizes", "100", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 2" in out

    def test_serve_bench_smoke(self, capsys):
        code = main([
            "serve-bench",
            "--n", "80", "--shards", "2", "--batches", "2",
            "--updates", "8", "--queries", "6",
            "--proximity-every", "2", "--seed", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ops/s" in out
        for column in ("p50_ms", "p99_ms", "avg_io", "io_per_op"):
            assert column in out
        assert "Per-shard load" in out

    @pytest.mark.chaos
    def test_serve_bench_chaos_smoke(self, capsys):
        """Seeded chaos run: faults + replication 2 + differential
        verification must exit 0 (zero lost updates, zero mismatches)."""
        code = main([
            "serve-bench",
            "--n", "240", "--shards", "3", "--batches", "3",
            "--updates", "24", "--queries", "12",
            "--seed", "7", "--faults", "--replication", "2", "--verify",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "fault tolerance" in out
        assert "verification" in out
        assert "errors" in out  # per-op failure column

    def test_figures_tiny(self, capsys, tmp_path):
        csv_dir = tmp_path / "csv"
        code = main(
            [
                "figures",
                "--sizes", "120",
                "--ticks", "6",
                "-c", "2",
                "--seed", "3",
                "--csv", str(csv_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for figure in ("Figure 6", "Figure 7", "Figure 8", "Figure 9"):
            assert figure in out
        for stem in ("fig6", "fig7", "fig8", "fig9"):
            assert (csv_dir / f"{stem}.csv").exists()


class TestCollectResults:
    def test_collect_to_file(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "a.txt").write_text("table A\n1 2 3\n")
        (results / "b.txt").write_text("table B\n4 5 6\n")
        out = tmp_path / "report.txt"
        code = main([
            "collect-results", "--results", str(results), "-o", str(out),
        ])
        assert code == 0
        report = out.read_text()
        assert "table A" in report and "table B" in report
        assert report.index("table A") < report.index("table B")

    def test_collect_missing_dir(self, tmp_path, capsys):
        code = main([
            "collect-results", "--results", str(tmp_path / "nope"),
        ])
        assert code == 1

    def test_collect_to_stdout(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "x.txt").write_text("only table\n")
        assert main(["collect-results", "--results", str(results)]) == 0
        assert "only table" in capsys.readouterr().out
