"""Tests for the external interval index (overlap reporting)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    DuplicateObjectError,
    InvalidQueryError,
    ObjectNotFoundError,
)
from repro.interval import IntervalIndex, IntervalTree
from repro.io_sim import DiskSimulator


def brute_overlap(intervals, ql, qh):
    return sorted(
        payload
        for (left, right, payload) in intervals
        if left <= qh and right >= ql
    )


class TestIntervalTree:
    def test_empty(self):
        tree = IntervalTree(DiskSimulator(), leaf_capacity=4)
        assert tree.overlapping(0, 100) == []
        tree.check_invariants()

    def test_basic_overlap_semantics(self):
        tree = IntervalTree(DiskSimulator(), leaf_capacity=4)
        tree.insert(0, 10, "a")
        tree.insert(5, 15, "b")
        tree.insert(20, 30, "c")
        assert sorted(tree.overlapping(8, 9)) == ["a", "b"]
        assert sorted(tree.overlapping(10, 20)) == ["a", "b", "c"]
        assert tree.overlapping(16, 19) == []
        # Closed-interval boundary touches count as overlap.
        assert tree.overlapping(30, 99) == ["c"]

    def test_invalid_inputs(self):
        tree = IntervalTree(DiskSimulator(), leaf_capacity=4)
        with pytest.raises(InvalidQueryError):
            tree.insert(5, 4, "x")
        with pytest.raises(InvalidQueryError):
            tree.overlapping(3, 2)

    def test_delete_by_handle(self):
        tree = IntervalTree(DiskSimulator(), leaf_capacity=4)
        handle = tree.insert(0, 10, "a")
        tree.insert(2, 8, "b")
        assert tree.delete(handle) == "a"
        assert tree.overlapping(0, 100) == ["b"]
        tree.check_invariants()

    def test_duplicate_endpoints_allowed(self):
        tree = IntervalTree(DiskSimulator(), leaf_capacity=4)
        for i in range(20):
            tree.insert(5.0, 9.0, i)
        assert sorted(tree.overlapping(6, 7)) == list(range(20))
        tree.check_invariants()

    def test_aggregates_maintained_under_churn(self):
        tree = IntervalTree(DiskSimulator(), leaf_capacity=4)
        rng = random.Random(5)
        live = {}
        for step in range(800):
            if live and rng.random() < 0.4:
                key = rng.choice(list(live))
                handle, _ = live.pop(key)
                tree.delete(handle)
            else:
                left = rng.uniform(0, 1000)
                right = left + rng.uniform(0, 200)
                handle = tree.insert(left, right, step)
                live[step] = (handle, (left, right))
            if step % 100 == 0:
                tree.check_invariants()
        tree.check_invariants()
        intervals = [
            (lo, hi, key) for key, (_, (lo, hi)) in live.items()
        ]
        for _ in range(30):
            ql = rng.uniform(-50, 1100)
            qh = ql + rng.uniform(0, 300)
            assert sorted(tree.overlapping(ql, qh)) == brute_overlap(
                intervals, ql, qh
            )

    def test_query_io_beats_full_scan(self):
        disk = DiskSimulator(buffer_pages=0)
        tree = IntervalTree(disk, leaf_capacity=16)
        # Many short intervals spread over a long timeline: a narrow query
        # must not read every leaf.
        for i in range(4000):
            tree.insert(i * 10.0, i * 10.0 + 5.0, i)
        before = disk.stats.snapshot()
        result = tree.overlapping(20000.0, 20050.0)
        delta = disk.stats.snapshot() - before
        assert 0 < len(result) < 20
        total_leaves = 4000 / 8  # >= n/B pages at half fill
        assert delta.reads < total_leaves / 4


class TestIntervalIndex:
    def test_insert_delete_by_oid(self):
        index = IntervalIndex(DiskSimulator(), leaf_capacity=4)
        index.insert(7, 0.0, 5.0)
        assert 7 in index
        assert index.overlapping(1, 2) == [7]
        index.delete(7)
        assert 7 not in index
        assert len(index) == 0

    def test_duplicate_oid_rejected(self):
        index = IntervalIndex(DiskSimulator(), leaf_capacity=4)
        index.insert(7, 0.0, 5.0)
        with pytest.raises(DuplicateObjectError):
            index.insert(7, 1.0, 2.0)

    def test_delete_unknown_oid(self):
        index = IntervalIndex(DiskSimulator(), leaf_capacity=4)
        with pytest.raises(ObjectNotFoundError):
            index.delete(42)


@settings(max_examples=30, deadline=None)
@given(
    intervals=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.floats(min_value=0, max_value=100, allow_nan=False),
        ),
        max_size=80,
    ),
    query=st.tuples(
        st.floats(min_value=-10, max_value=110, allow_nan=False),
        st.floats(min_value=-10, max_value=110, allow_nan=False),
    ),
)
def test_property_overlap_matches_brute_force(intervals, query):
    tree = IntervalTree(DiskSimulator(), leaf_capacity=4)
    stored = []
    for i, (a, b) in enumerate(intervals):
        left, right = min(a, b), max(a, b)
        tree.insert(left, right, i)
        stored.append((left, right, i))
    ql, qh = min(query), max(query)
    assert sorted(tree.overlapping(ql, qh)) == brute_overlap(stored, ql, qh)
    tree.check_invariants()
