"""Integration tests for the batched query path and the result cache.

The contract under test everywhere: ``query_batch`` changes throughput,
never semantics.  Batched answers must equal the scalar ones —
element-for-element — through every layer (index, database, sharded
service, fault-tolerant service, executor) and across cache hits,
invalidations, evictions and degraded modes.
"""

import random
import threading

import pytest

from repro.core import MORQuery1D
from repro.errors import InvalidQueryError
from repro.indexes.base import MobileIndex1D
from repro.service import (
    BatchBenchConfig,
    BatchExecutor,
    FaultTolerantMotionService,
    Register,
    Report,
    ShardedMotionService,
    run_batch_bench,
)
from repro.vector.cache import QueryResultCache
from repro.vector.ops import Nearest, ProximityPairs, SnapshotAt, Within
from repro import MotionDatabase

pytestmark = pytest.mark.batch

Y_MAX, V_MIN, V_MAX = 1000.0, 0.16, 1.66


def populate(target, n=60, seed=7):
    rng = random.Random(seed)
    for oid in range(n):
        target.register(
            oid,
            rng.uniform(0, Y_MAX),
            rng.uniform(V_MIN, V_MAX) * rng.choice([1.0, -1.0]),
            rng.uniform(0, 5),
        )
    return rng


def mixed_ops(rng, count=40):
    ops = []
    for q in range(count):
        t1 = rng.uniform(5, 40)
        y1 = rng.uniform(0, Y_MAX - 120)
        kind = q % 3
        if kind == 0:
            ops.append(Within(y1, y1 + rng.uniform(10, 120), t1, t1 + 10))
        elif kind == 1:
            ops.append(SnapshotAt(y1, y1 + rng.uniform(10, 120), t1))
        else:
            ops.append(Nearest(y1, t1, k=rng.randint(1, 5)))
    ops.append(ProximityPairs(3.0, 6.0, 9.0))
    return ops


def scalar_answers(target, ops):
    out = []
    for op in ops:
        if isinstance(op, Within):
            out.append(target.within(op.y1, op.y2, op.t1, op.t2))
        elif isinstance(op, SnapshotAt):
            out.append(target.snapshot_at(op.y1, op.y2, op.t))
        elif isinstance(op, Nearest):
            out.append(target.nearest(op.y, op.t, op.k))
        else:
            out.append(target.proximity_pairs(op.d, op.t1, op.t2))
    return out


# -- MotionDatabase ------------------------------------------------------------


class TestDatabaseBatch:
    def test_vector_batch_equals_scalar_methods(self):
        db = MotionDatabase(Y_MAX, V_MIN, V_MAX)
        rng = populate(db)
        assert db.vector_enabled
        ops = mixed_ops(rng)
        assert db.query_batch(ops) == scalar_answers(db, ops)

    def test_vector_batch_equals_scalar_fallback_after_churn(self):
        db = MotionDatabase(Y_MAX, V_MIN, V_MAX)
        rng = populate(db)
        db.report(3, 500.0, 1.0, 6.0)
        db.deregister(10)
        db.deregister(59)  # last row: exercises swap-with-last
        db.report(4, 10.0, -1.0, 6.5)
        ops = mixed_ops(rng)
        assert db.query_batch(ops) == db._query_batch_scalar(ops)

    def test_vector_disabled_falls_back_to_scalar(self):
        db = MotionDatabase(Y_MAX, V_MIN, V_MAX, vector=False)
        rng = populate(db)
        assert not db.vector_enabled
        ops = mixed_ops(rng)
        assert db.query_batch(ops) == scalar_answers(db, ops)

    def test_unknown_op_raises(self):
        db = MotionDatabase(Y_MAX, V_MIN, V_MAX)
        with pytest.raises(TypeError):
            db.query_batch([MORQuery1D(0.0, 1.0, 0.0, 1.0)])

    def test_index_default_query_batch_is_scalar_loop(self):
        class Probe(MobileIndex1D):
            def __init__(self):
                self.calls = []

            def insert(self, obj):
                pass

            def delete(self, oid):
                pass

            def query(self, query):
                self.calls.append(query)
                return {len(self.calls)}

            def __len__(self):
                return 0

            def disks(self):
                return []

        probe = Probe()
        q = MORQuery1D(0.0, 1.0, 0.0, 1.0)
        assert probe.query_batch([q, q]) == [{1}, {2}]
        assert probe.calls == [q, q]


# -- sharded service -----------------------------------------------------------


class TestServiceBatch:
    def make(self, **kw):
        service = ShardedMotionService(Y_MAX, V_MIN, V_MAX, shards=3, **kw)
        rng = populate(service)
        return service, rng

    def test_batch_equals_scalar_loop(self):
        service, rng = self.make()
        ops = mixed_ops(rng)
        assert service.query_batch(ops) == scalar_answers(service, ops)

    def test_cache_hits_and_invalidation_counters(self):
        service, rng = self.make()
        ops = mixed_ops(rng, count=20)
        service.query_batch(ops)
        stats = service.query_cache.stats()
        assert stats["misses"] == len(ops)
        assert stats["hits"] == 0
        service.query_batch(ops)
        stats = service.query_cache.stats()
        assert stats["hits"] == len(ops)
        assert stats["misses"] == len(ops)
        # Counters surface in the shared MetricsRegistry too.
        assert service.metrics.counter("query_cache_hits").value == len(ops)
        before = service.query_cache.stats()["invalidations"]
        service.report(0, 500.0, 1.0, 6.0)
        assert service.query_cache.stats()["invalidations"] >= before

    def test_answers_stay_correct_across_writes(self):
        service, rng = self.make()
        ops = mixed_ops(rng)
        service.query_batch(ops)  # warm the cache
        service.report(5, 250.0, 1.2, 6.0)
        service.deregister(17)
        assert service.query_batch(ops) == scalar_answers(service, ops)

    def test_duplicate_ops_get_independent_results(self):
        service, rng = self.make()
        op = Within(100.0, 400.0, 5.0, 15.0)
        first, second = service.query_batch([op, op])
        assert first == second
        first.add(-1)
        assert -1 not in second

    def test_cached_results_are_isolated_from_callers(self):
        service, rng = self.make()
        op = Within(100.0, 400.0, 5.0, 15.0)
        (result,) = service.query_batch([op])
        result.add(-1)
        (again,) = service.query_batch([op])
        assert -1 not in again

    def test_cache_capacity_zero_disables_cache(self):
        service, rng = self.make(cache_capacity=0)
        assert service.query_cache is None
        ops = mixed_ops(rng)
        assert service.query_batch(ops) == scalar_answers(service, ops)

    def test_lru_eviction(self):
        service, rng = self.make(cache_capacity=2)
        a = Within(0.0, 100.0, 5.0, 10.0)
        b = Within(100.0, 200.0, 5.0, 10.0)
        c = Within(200.0, 300.0, 5.0, 10.0)
        service.query_batch([a, b, c])  # a evicted by c
        stats = service.query_cache.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 2
        service.query_batch([a])
        assert service.query_cache.stats()["misses"] == 4

    def test_clock_bucket_separates_epochs(self):
        service, rng = self.make(cache_clock_bucket=1.0)
        op = SnapshotAt(0.0, Y_MAX, 10.0)
        service.query_batch([op])
        service.query_batch([op])
        assert service.query_cache.stats()["hits"] == 1
        # Advancing the service clock past the bucket edge makes the
        # cached entry invisible: fresh miss, no stale answer.
        service.report(0, 500.0, 1.0, service.now + 2.0)
        service.query_batch([op])
        assert service.query_cache.stats()["misses"] == 2

    def test_unknown_op_raises(self):
        service, _ = self.make()
        with pytest.raises(TypeError):
            service.query_batch(["within"])


# -- concurrency: batches racing the write stream ------------------------------


class TestBatchConcurrency:
    """The cache's write-race guarantee under real thread interleaving.

    A result computed outside the cache lock can be overtaken by a
    write before ``put`` runs; without the generation guard the write
    invalidates nothing (the entry is not resident yet) and the stale
    answer is served forever.  These tests hammer exactly that window
    and then check the post-quiescence batch answers — including the
    purely-cached second round — differentially against the scalar
    path.
    """

    ROUNDS = 6
    WRITERS = 3
    READERS = 2

    def churn(self, service, ops, kill=None):
        """Run writer churn against a repeated-batch reader storm.

        Returns the list of exceptions raised inside worker threads
        (must be empty).  ``kill`` is an optional zero-arg callable run
        once from its own thread mid-storm (e.g. a shard kill).
        """
        errors = []
        start = threading.Barrier(
            self.WRITERS + self.READERS + (1 if kill else 0)
        )

        def writer_loop(writer):
            # Update timestamps stay below every query instant
            # (mixed_ops uses t >= 5): the MOR model defines queries
            # at or after an object's latest update — instants before
            # it are the historical regime (query_past), where the
            # index path is not answerable and batch/scalar may
            # legitimately differ.
            rng = random.Random(500 + writer)
            try:
                start.wait()
                for round_no in range(self.ROUNDS):
                    t0 = 0.5 + round_no * 0.5 + writer / 10.0
                    for slot in range(writer, 60, self.WRITERS):
                        y0 = rng.uniform(0, Y_MAX)
                        v = rng.uniform(V_MIN, V_MAX) * rng.choice(
                            [1.0, -1.0]
                        )
                        service.report(slot, y0, v, t0)
                    extra = 1000 + writer
                    service.register(extra, rng.uniform(0, Y_MAX), V_MIN, t0)
                    service.deregister(extra)
            except Exception as exc:  # pragma: no cover - reporting
                errors.append(exc)

        def reader_loop(reader):
            try:
                start.wait()
                for _ in range(self.ROUNDS * 3):
                    results = service.query_batch(ops)
                    assert len(results) == len(ops)
            except Exception as exc:  # pragma: no cover - reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=writer_loop, args=(w,))
            for w in range(self.WRITERS)
        ] + [
            threading.Thread(target=reader_loop, args=(r,))
            for r in range(self.READERS)
        ]
        if kill is not None:

            def kill_loop():
                try:
                    start.wait()
                    kill()
                except Exception as exc:  # pragma: no cover - reporting
                    errors.append(exc)

            threads.append(threading.Thread(target=kill_loop))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return errors

    def test_batch_cache_consistent_after_write_churn(self):
        service = ShardedMotionService(Y_MAX, V_MIN, V_MAX, shards=3)
        rng = populate(service)
        ops = mixed_ops(rng, count=25)
        assert self.churn(service, ops) == []
        # Post-quiescence the batch path must agree with the scalar
        # path — twice: the first call may recompute dropped entries,
        # the second is answered largely from the cache and would
        # surface any stale value a racing put managed to store.
        expected = scalar_answers(service, ops)
        assert service.query_batch(ops) == expected
        assert service.query_batch(ops) == expected
        stats = service.query_cache.stats()
        assert stats["misses"] > 0  # the storm actually exercised it

    def test_kill_mid_storm_then_recovery_stays_consistent(self):
        service = FaultTolerantMotionService(
            Y_MAX, V_MIN, V_MAX, shards=3, replication_factor=2
        )
        rng = populate(service)
        ops = mixed_ops(rng, count=15)
        # replication_factor=2 keeps every write and query answerable
        # with one shard down, so no thread may fail.
        assert self.churn(
            service, ops, kill=lambda: service.kill_shard(1)
        ) == []
        service.recover_shard(1)
        expected = scalar_answers(service, ops)
        assert service.query_batch(ops) == expected
        assert service.query_batch(ops) == expected


class TestFaultTolerantBatch:
    def make(self):
        service = FaultTolerantMotionService(
            Y_MAX, V_MIN, V_MAX, shards=3, replication_factor=2
        )
        rng = populate(service)
        return service, rng

    def test_healthy_fast_path_equals_scalar(self):
        service, rng = self.make()
        ops = mixed_ops(rng)
        assert service.query_batch(ops) == scalar_answers(service, ops)

    def test_degraded_batch_equals_degraded_scalar(self):
        service, rng = self.make()
        ops = mixed_ops(rng)
        service.kill_shard(1)
        assert service.down_shards() == [1]
        assert service.query_batch(ops) == scalar_answers(service, ops)

    def test_degraded_answers_are_not_cached(self):
        service, rng = self.make()
        op = Within(0.0, Y_MAX, 5.0, 15.0)
        service.kill_shard(1)
        service.query_batch([op])
        service.query_batch([op])
        stats = service.query_cache.stats()
        assert stats["hits"] == 0 and stats["entries"] == 0

    def test_recovery_restores_fast_path(self):
        service, rng = self.make()
        ops = mixed_ops(rng, count=10)
        service.kill_shard(2)
        service.recover_shard(2)
        assert service.query_batch(ops) == scalar_answers(service, ops)
        assert service.query_cache.stats()["entries"] > 0


# -- executor ------------------------------------------------------------------


class TestExecutorBatch:
    def build(self, **kw):
        service = ShardedMotionService(Y_MAX, V_MIN, V_MAX, shards=3)
        executor = BatchExecutor(service, **kw)
        return service, executor

    def batch_for(self, rng):
        batch = [
            Register(oid, rng.uniform(0, Y_MAX), rng.uniform(V_MIN, V_MAX), 0.0)
            for oid in range(40)
        ]
        batch += mixed_ops(rng, count=15)
        batch.append(Report(3, 100.0, 1.0, 2.0))
        return batch

    def test_batched_epoch_matches_per_query_epoch(self):
        rng1, rng2 = random.Random(3), random.Random(3)
        s1, e1 = self.build(batch_queries=False)
        s2, e2 = self.build(batch_queries=True)
        with e1, e2:
            r1 = e1.run(self.batch_for(rng1))
            r2 = e2.run(self.batch_for(rng2))
        assert [r.value for r in r1] == [r.value for r in r2]
        assert all(r.ok for r in r2)

    def test_batched_epoch_contains_bad_query(self):
        service, executor = self.build(batch_queries=True)
        rng = populate(service)
        with executor:
            results = executor.run(
                [Within(0.0, Y_MAX, 5.0, 10.0), Nearest(0.0, 5.0, k=0)]
            )
        good, bad = results
        assert good.ok and good.value == service.within(0.0, Y_MAX, 5.0, 10.0)
        assert not bad.ok
        assert isinstance(bad.error, InvalidQueryError)


# -- cache unit behavior -------------------------------------------------------


class TestQueryResultCache:
    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            QueryResultCache(capacity=0)
        with pytest.raises(ValueError):
            QueryResultCache(clock_bucket=0.0)

    def test_nearest_invalidation_is_distance_aware(self):
        cache = QueryResultCache()
        op = Nearest(0.0, 10.0, k=1)
        cache.put(op, [(1, 5.0)], now=0.0)
        # A far-away newcomer cannot enter a full top-1: entry survives.
        from repro.core import LinearMotion1D

        cache.on_update("insert", 2, LinearMotion1D(500.0, 0.0, 0.0))
        assert cache.get(op, now=0.0)[0]
        # A closer newcomer must invalidate.
        cache.on_update("insert", 3, LinearMotion1D(2.0, 0.0, 0.0))
        hit, _ = cache.get(op, now=0.0)
        assert not hit
        assert cache.stats()["invalidations"] == 1

    def test_unrelated_write_preserves_within_entry(self):
        cache = QueryResultCache()
        op = Within(0.0, 10.0, 0.0, 1.0)
        cache.put(op, {1}, now=0.0)
        from repro.core import LinearMotion1D

        cache.on_update("insert", 9, LinearMotion1D(900.0, 0.0, 0.0))
        assert cache.get(op, now=0.0)[0]
        cache.on_update("delete", 1, None)
        assert not cache.get(op, now=0.0)[0]

    def test_stale_put_dropped_when_racing_write_affects_it(self):
        # The TOCTOU window: the write lands after the value was
        # computed but before put — invalidation finds nothing (the
        # entry is not resident yet), so put itself must refuse.
        from repro.core import LinearMotion1D

        cache = QueryResultCache()
        op = Within(0.0, 10.0, 0.0, 1.0)
        gen = cache.generation()
        cache.on_update("insert", 7, LinearMotion1D(5.0, 0.0, 0.0))
        cache.put(op, {1}, now=0.0, generation=gen)
        assert not cache.get(op, now=0.0)[0]
        assert cache.stats()["stale_puts"] == 1

    def test_stale_put_kept_when_racing_write_is_irrelevant(self):
        from repro.core import LinearMotion1D

        cache = QueryResultCache()
        op = Within(0.0, 10.0, 0.0, 1.0)
        gen = cache.generation()
        cache.on_update("insert", 7, LinearMotion1D(900.0, 0.0, 0.0))
        cache.put(op, {1}, now=0.0, generation=gen)
        assert cache.get(op, now=0.0)[0]
        assert cache.stats()["stale_puts"] == 0

    def test_bump_generation_floors_inflight_puts(self):
        cache = QueryResultCache()
        op = Within(0.0, 10.0, 0.0, 1.0)
        gen = cache.generation()
        cache.bump_generation()  # e.g. a shard died mid-batch
        cache.put(op, {1}, now=0.0, generation=gen)
        assert not cache.get(op, now=0.0)[0]
        assert cache.stats()["stale_puts"] == 1
        # A snapshot taken after the event is accepted again.
        gen = cache.generation()
        cache.put(op, {1}, now=0.0, generation=gen)
        assert cache.get(op, now=0.0)[0]

    def test_clear_floors_inflight_puts(self):
        cache = QueryResultCache()
        op = Within(0.0, 10.0, 0.0, 1.0)
        gen = cache.generation()
        cache.clear()
        cache.put(op, {1}, now=0.0, generation=gen)
        assert not cache.get(op, now=0.0)[0]

    def test_write_log_overrun_rejects_conservatively(self):
        from repro.core import LinearMotion1D
        from repro.vector.cache import WRITE_LOG_WINDOW

        cache = QueryResultCache()
        op = Within(0.0, 10.0, 0.0, 1.0)
        gen = cache.generation()
        for i in range(WRITE_LOG_WINDOW + 1):  # all provably irrelevant
            cache.on_update(
                "insert", 100 + i, LinearMotion1D(900.0, 0.0, 0.0)
            )
        cache.put(op, {1}, now=0.0, generation=gen)
        assert not cache.get(op, now=0.0)[0]
        assert cache.stats()["stale_puts"] == 1


# -- the benchmark harness -----------------------------------------------------


def test_run_batch_bench_small(tmp_path):
    json_path = tmp_path / "BENCH_batch.json"
    config = BatchBenchConfig(
        n=300, queries=60, shards=2, batch_size=20, json_path=str(json_path)
    )
    report = run_batch_bench(config)
    assert report.ok
    assert report.divergences == []
    assert report.query_count == 60
    assert report.speedup > 0
    assert json_path.exists()
    rendered = report.render()
    assert "speedup" in rendered


def test_batch_bench_rejects_bad_config():
    with pytest.raises(ValueError):
        run_batch_bench(BatchBenchConfig(n=0))
