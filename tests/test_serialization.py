"""Tests for workload serialization and trace replay."""

import random

import pytest

from repro.core import MORQuery1D, brute_force_1d
from repro.errors import InvalidQueryError
from repro.indexes import DualKDTreeIndex, HoughYForestIndex
from repro.workloads.serialization import (
    load_population,
    population_from_json,
    population_to_json,
    queries_from_json,
    queries_to_json,
    replay_trace,
    save_population,
    trace_from_json,
    trace_to_json,
)

from .helpers import PAPER_MODEL, random_objects, random_queries


class TestPopulationRoundtrip:
    def test_json_roundtrip(self):
        rng = random.Random(1)
        objects = random_objects(rng, 50)
        assert population_from_json(population_to_json(objects)) == objects

    def test_file_roundtrip(self, tmp_path):
        rng = random.Random(2)
        objects = random_objects(rng, 20)
        path = tmp_path / "population.json"
        save_population(str(path), objects)
        assert load_population(str(path)) == objects

    def test_malformed_payload(self):
        with pytest.raises(InvalidQueryError):
            population_from_json('{"objects": [{"oid": 1}]}')


class TestQueryRoundtrip:
    def test_json_roundtrip(self):
        rng = random.Random(3)
        queries = random_queries(rng, 20)
        assert queries_from_json(queries_to_json(queries)) == queries

    def test_malformed(self):
        with pytest.raises(InvalidQueryError):
            queries_from_json('{"queries": [{"y1": 0}]}')


class TestTraceReplay:
    def build_trace(self, rng, steps=150):
        events = []
        live = {}
        next_id = 0
        now = 0.0
        for _ in range(steps):
            now += rng.uniform(0, 1)
            roll = rng.random()
            if roll < 0.5 or not live:
                speed = rng.uniform(0.16, 1.66) * rng.choice([-1, 1])
                events.append(
                    dict(kind="insert", oid=next_id,
                         y0=rng.uniform(0, 1000), v=speed, t0=now)
                )
                live[next_id] = events[-1]
                next_id += 1
            elif roll < 0.7:
                oid = rng.choice(list(live))
                speed = rng.uniform(0.16, 1.66) * rng.choice([-1, 1])
                events.append(
                    dict(kind="update", oid=oid,
                         y0=rng.uniform(0, 1000), v=speed, t0=now)
                )
                live[oid] = events[-1]
            elif roll < 0.82:
                oid = rng.choice(list(live))
                events.append(dict(kind="delete", oid=oid))
                del live[oid]
            else:
                y1 = rng.uniform(0, 900)
                events.append(
                    dict(kind="query", y1=y1, y2=y1 + 100,
                         t1=now, t2=now + 30)
                )
        return events

    def test_replay_is_method_independent(self):
        rng = random.Random(7)
        events = self.build_trace(rng)
        payload = trace_to_json(events)
        restored = trace_from_json(payload)
        a = replay_trace(
            DualKDTreeIndex(PAPER_MODEL, leaf_capacity=8), restored
        )
        b = replay_trace(
            HoughYForestIndex(PAPER_MODEL, c=3, leaf_capacity=8), restored
        )
        assert a == b
        assert len(a) == sum(1 for e in events if e["kind"] == "query")

    def test_unknown_event_kind(self):
        index = DualKDTreeIndex(PAPER_MODEL, leaf_capacity=8)
        with pytest.raises(InvalidQueryError):
            replay_trace(index, [dict(kind="explode")])
