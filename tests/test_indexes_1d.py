"""Conformance tests: every 1-D index answers MOR queries exactly.

Each method from the paper's performance study is run against the
brute-force oracle on the same random population, through inserts,
queries, updates and deletes.
"""

import random

import pytest

from repro.core import (
    LinearMotion1D,
    MOR1Query,
    MORQuery1D,
    MobileObject1D,
    brute_force_1d,
)
from repro.errors import (
    DuplicateObjectError,
    InvalidMotionError,
    ObjectNotFoundError,
)
from repro.indexes import (
    INDEX_REGISTRY,
    DualKDTreeIndex,
    DualRTreeIndex,
    HoughYForestIndex,
    HybridIndex,
    NaiveScanIndex,
    RotatingIndex,
    SegmentRTreeIndex,
)
from repro.indexes.partition_index import PartitionTreeIndex
from repro.indexes.tpr import TPRTreeIndex

from .helpers import PAPER_MODEL, random_objects, random_queries

# Small capacities force multi-level trees even with few objects.
FACTORIES = {
    "naive-scan": lambda: NaiveScanIndex(PAPER_MODEL, page_capacity=16),
    "segment-rstar": lambda: SegmentRTreeIndex(PAPER_MODEL, page_capacity=8),
    "dual-kdtree": lambda: DualKDTreeIndex(PAPER_MODEL, leaf_capacity=8),
    "dual-rstar": lambda: DualRTreeIndex(PAPER_MODEL, page_capacity=8),
    "hough-y-forest-c2": lambda: HoughYForestIndex(
        PAPER_MODEL, c=2, leaf_capacity=8
    ),
    "hough-y-forest-c4": lambda: HoughYForestIndex(
        PAPER_MODEL, c=4, leaf_capacity=8
    ),
    "hough-y-forest-c8": lambda: HoughYForestIndex(
        PAPER_MODEL, c=8, leaf_capacity=8
    ),
    "hough-y-forest-piecewise": lambda: HoughYForestIndex(
        PAPER_MODEL, c=4, leaf_capacity=8, wide_strategy="piecewise"
    ),
    "partition-tree": lambda: PartitionTreeIndex(
        PAPER_MODEL, leaf_capacity=8, internal_capacity=16
    ),
    "rotating-kdtree": lambda: RotatingIndex(
        PAPER_MODEL,
        factory=lambda t_ref: DualKDTreeIndex(
            PAPER_MODEL, t_ref=t_ref, leaf_capacity=8
        ),
    ),
    "tpr-tree": lambda: TPRTreeIndex(PAPER_MODEL, page_capacity=8),
    "hybrid-kdtree": lambda: HybridIndex(
        PAPER_MODEL,
        fast_factory=lambda m: DualKDTreeIndex(m, leaf_capacity=8),
    ),
}


@pytest.fixture(params=sorted(FACTORIES), ids=sorted(FACTORIES))
def index(request):
    return FACTORIES[request.param]()


class TestConformance:
    def test_queries_match_brute_force(self, index):
        rng = random.Random(101)
        objects = random_objects(rng, 300)
        for obj in objects:
            index.insert(obj)
        assert len(index) == 300
        for query in random_queries(rng, 30):
            assert index.query(query) == brute_force_1d(objects, query)

    def test_narrow_and_wide_queries(self, index):
        """Both branches of the forest's case analysis get exercised."""
        rng = random.Random(103)
        objects = random_objects(rng, 200)
        for obj in objects:
            index.insert(obj)
        narrow = random_queries(rng, 15, yq_max=10.0, tw_max=20.0)
        wide = random_queries(rng, 15, yq_max=700.0, tw_max=60.0)
        for query in narrow + wide:
            assert index.query(query) == brute_force_1d(objects, query)

    def test_instant_queries(self, index):
        """Degenerate windows (t1 == t2) are the MOR1 special case."""
        rng = random.Random(107)
        objects = random_objects(rng, 150)
        for obj in objects:
            index.insert(obj)
        for _ in range(15):
            t = rng.uniform(100, 160)
            y1 = rng.uniform(0, 900)
            query = MOR1Query(y1, y1 + 100, t).as_mor()
            assert index.query(query) == brute_force_1d(objects, query)

    def test_updates_and_deletes(self, index):
        rng = random.Random(109)
        objects = {obj.oid: obj for obj in random_objects(rng, 150)}
        for obj in objects.values():
            index.insert(obj)
        # Update half of the population with fresh motion.
        for oid in list(objects)[::2]:
            speed = rng.uniform(PAPER_MODEL.v_min, PAPER_MODEL.v_max)
            direction = 1 if rng.random() < 0.5 else -1
            new = MobileObject1D(
                oid,
                LinearMotion1D(
                    rng.uniform(0, 1000), direction * speed, t0=120.0
                ),
            )
            index.update(new)
            objects[oid] = new
        # Delete a third of them.
        for oid in list(objects)[::3]:
            index.delete(oid)
            del objects[oid]
        assert len(index) == len(objects)
        for query in random_queries(rng, 20, t_now=130.0):
            assert index.query(query) == brute_force_1d(
                objects.values(), query
            )

    def test_duplicate_insert_rejected(self, index):
        obj = MobileObject1D(1, LinearMotion1D(500.0, 1.0, 0.0))
        index.insert(obj)
        with pytest.raises(DuplicateObjectError):
            index.insert(obj)

    def test_delete_missing_rejected(self, index):
        with pytest.raises(ObjectNotFoundError):
            index.delete(999)

    def test_out_of_band_motion_rejected(self, index):
        with pytest.raises(InvalidMotionError):
            index.insert(MobileObject1D(1, LinearMotion1D(500.0, 99.0, 0.0)))
        if isinstance(index, HybridIndex):
            # The hybrid accepts the slow band by design (paper §3 split).
            index.insert(MobileObject1D(2, LinearMotion1D(500.0, 0.0, 0.0)))
            assert len(index) == 1
        else:
            with pytest.raises(InvalidMotionError):
                index.insert(MobileObject1D(2, LinearMotion1D(500.0, 0.0, 0.0)))

    def test_empty_index_queries(self, index):
        assert index.query(MORQuery1D(0, 1000, 0, 100)) == set()
        assert len(index) == 0
        assert index.pages_in_use >= 0


class TestRegistry:
    def test_all_methods_registered(self):
        for name in (
            "naive-scan",
            "segment-rstar",
            "dual-kdtree",
            "dual-rstar",
            "hough-y-forest",
        ):
            assert name in INDEX_REGISTRY


class TestForestSpecifics:
    def test_c_validation(self):
        with pytest.raises(ValueError):
            HoughYForestIndex(PAPER_MODEL, c=0)

    def test_space_grows_with_c(self):
        rng = random.Random(113)
        objects = random_objects(rng, 200)
        pages = {}
        for c in (2, 4, 8):
            forest = HoughYForestIndex(PAPER_MODEL, c=c, leaf_capacity=16)
            for obj in objects:
                forest.insert(obj)
            pages[c] = forest.pages_in_use
        assert pages[2] < pages[4] < pages[8]

    def test_approximation_error_shrinks_with_c(self):
        """More observation indexes => fewer false positives (eq. 2)."""
        rng = random.Random(127)
        objects = random_objects(rng, 400)
        queries = random_queries(rng, 40, yq_max=100.0, tw_max=40.0)
        waste = {}
        for c in (2, 8):
            forest = HoughYForestIndex(PAPER_MODEL, c=c, leaf_capacity=32)
            for obj in objects:
                forest.insert(obj)
            fetched = exact = 0
            for query in queries:
                if query.y_extent > 1000.0 / c:
                    continue
                f, e = forest.approximation_overhead(query)
                fetched += f
                exact += e
            waste[c] = fetched - exact
        assert waste[8] <= waste[2]

    def test_update_cost_scales_with_c(self):
        rng = random.Random(131)
        objects = random_objects(rng, 200)
        cost = {}
        for c in (2, 8):
            forest = HoughYForestIndex(PAPER_MODEL, c=c, leaf_capacity=16)
            for obj in objects:
                forest.insert(obj)
            snap = forest.snapshot()
            for obj in objects[:50]:
                replacement = MobileObject1D(
                    obj.oid, LinearMotion1D(500.0, 1.0, 150.0)
                )
                forest.update(replacement)
            cost[c] = forest.io_cost_since(snap)
        assert cost[8] > cost[2]


class TestNaiveHeapFile:
    def test_emptied_pages_are_freed(self):
        index = NaiveScanIndex(PAPER_MODEL, page_capacity=2)
        objects = random_objects(random.Random(7), 6)
        for obj in objects:
            index.insert(obj)
        pages_full = index.pages_in_use
        # Empty the first page entirely (oids 0 and 1 share it).
        index.delete(0)
        index.delete(1)
        assert index.pages_in_use < pages_full
        query = MORQuery1D(0, 1000, 100, 160)
        assert index.query(query) == brute_force_1d(objects[2:], query)
