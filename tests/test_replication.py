"""Chaos differential tests for :class:`FaultTolerantMotionService`.

The acceptance criteria of the fault-tolerance work, verified end to
end:

* with seeded fault injection (transient errors, latency spikes, a
  mid-trace crash) and ``replication_factor=2``, the full query menu
  is *identical* to a faultless single :class:`MotionDatabase`;
* with ``replication_factor=1`` and a dead shard, queries degrade to
  :class:`PartialResult` (naming the unavailable shard) instead of
  raising, and emit :class:`DegradedResultWarning`;
* a recovered shard is byte-identical to its committed pre-crash
  state, and catalog reconciliation catches it up with writes that
  landed on surviving replicas while it was down.
"""

import random
import warnings

import pytest

from repro.engine import MotionDatabase
from repro.errors import (
    DegradedResultWarning,
    ObjectNotFoundError,
    ShardUnavailableError,
)
from repro.service import (
    FaultInjector,
    FaultSpec,
    FaultTolerantMotionService,
    PartialResult,
    RetryPolicy,
)
from repro.workloads.serialization import population_to_json

from .test_service_differential import drive, full_menu_check

Y_MAX, V_MIN, V_MAX = 1000.0, 0.16, 1.66

pytestmark = pytest.mark.chaos


def fast_retry() -> RetryPolicy:
    """Deterministic retries with no real sleeping."""
    return RetryPolicy(attempts=5, backoff_s=0.001, sleep=lambda s: None)


def make_service(shards=4, replication=2, injector=None, **kwargs):
    return FaultTolerantMotionService(
        Y_MAX, V_MIN, V_MAX,
        shards=shards,
        replication_factor=replication,
        fault_injector=injector,
        retry=fast_retry(),
        checkpoint_every=16,
        **kwargs,
    )


def seed_population(service, oracle=None, n=60, seed=101):
    rng = random.Random(seed)
    for oid in range(n):
        y0 = rng.uniform(0.0, Y_MAX)
        v = rng.uniform(V_MIN, V_MAX) * rng.choice((-1.0, 1.0))
        service.register(oid, y0, v, 0.0)
        if oracle is not None:
            oracle.register(oid, y0, v, 0.0)
    return rng


@pytest.mark.parametrize("seed", [13, 29])
def test_chaos_r2_matches_faultless_single_database(seed):
    """Replicated service under injected faults ≡ faultless oracle.

    The injector fires transient errors and latency spikes everywhere
    plus one crash on a victim shard mid-trace; ``replication=2``
    means every answer must still come back complete and identical.
    Down shards are recovered at every differential checkpoint, so
    the crash is also exercised through the recovery path.
    """
    victim = seed % 4
    injector = FaultInjector(
        seed=seed,
        default=FaultSpec(
            error_rate=0.04, latency_rate=0.02, latency_s=0.0001
        ),
        per_shard={
            victim: FaultSpec(error_rate=0.04, crash_on_op=45),
        },
        sleep=lambda s: None,
    )
    single = MotionDatabase(Y_MAX, V_MIN, V_MAX)
    service = make_service(shards=4, replication=2, injector=injector)

    def check(single_db, sharded, rng, now):
        full_menu_check(single_db, sharded, rng, now)
        for shard in sharded.down_shards():
            sharded.recover_shard(shard)

    drive(random.Random(seed), single, service, steps=150, check=check)
    # The crash actually happened and was recovered from.
    assert injector.snapshot()["injected"]["crashes"] == 1
    assert service.service_stats()["fault_tolerance"]["recoveries"] >= 1
    assert service.down_shards() == []
    # Nothing lost: the service's object set equals the oracle's.
    assert service.within(0.0, Y_MAX, single.now, single.now + 1.0) == (
        single.within(0.0, Y_MAX, single.now, single.now + 1.0)
    )


def test_r1_dead_shard_degrades_queries_instead_of_raising():
    service = make_service(shards=3, replication=1)
    oracle = MotionDatabase(Y_MAX, V_MIN, V_MAX)
    seed_population(service, oracle, n=45)
    victim = 0
    lost = {
        oid for oid in range(45) if service.shard_of(oid) == victim
    }
    assert lost  # 45 objects over 3 shards: the victim owns some
    service.kill_shard(victim, reason="pulled the plug")

    with pytest.warns(DegradedResultWarning):
        result = service.within(0.0, Y_MAX, 0.0, 10.0)
    assert isinstance(result, PartialResult)
    assert not result.complete
    assert result.unavailable_shards == (victim,)
    assert result.value == oracle.within(0.0, Y_MAX, 0.0, 10.0) - lost
    # PartialResult still quacks like the underlying set.
    assert len(result) == len(result.value)
    assert set(iter(result)) == result.value
    survivor = next(iter(result.value))
    assert survivor in result

    with pytest.warns(DegradedResultWarning):
        ranked = service.nearest(Y_MAX / 2, 5.0, k=6)
    assert isinstance(ranked, PartialResult)
    assert [oid for oid, _ in ranked.value] == [
        oid for oid, _ in oracle.nearest(Y_MAX / 2, 5.0, k=40)
        if oid not in lost
    ][:6]

    with pytest.warns(DegradedResultWarning):
        pairs = service.proximity_pairs(30.0, 0.0, 10.0)
    assert isinstance(pairs, PartialResult)
    expected_pairs = {
        (a, b)
        for a, b in oracle.proximity_pairs(30.0, 0.0, 10.0)
        if a not in lost and b not in lost
    }
    assert pairs.value == expected_pairs

    # Writes against the dead group do raise — there is nowhere to
    # durably apply them — and reads of those objects fail over to
    # nothing.
    casualty = next(iter(lost))
    with pytest.raises(ShardUnavailableError):
        service.report(casualty, 10.0, 1.0, 20.0)
    with pytest.raises(ShardUnavailableError):
        service.location_of(casualty, 5.0)
    # A register routed to the dead shard rolls its catalog entry
    # back, so the oid is re-registerable after recovery.
    doomed = next(
        oid for oid in range(1000, 1100)
        if service.router.route(
            oid, oracle._motions[survivor]
        ) == victim
    )
    with pytest.raises(ShardUnavailableError):
        service.register(doomed, 100.0, 1.0, 0.0)
    service.recover_shard(victim)
    service.register(doomed, 100.0, 1.0, 0.0)
    assert service.location_of(doomed, 0.0) == 100.0
    # Back to full answers, no warning.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        full = service.within(0.0, Y_MAX, 0.0, 10.0)
    assert full == oracle.within(0.0, Y_MAX, 0.0, 10.0) | {doomed}


def test_failover_keeps_serving_after_primary_death():
    service = make_service(shards=4, replication=2)
    oracle = MotionDatabase(Y_MAX, V_MIN, V_MAX)
    seed_population(service, oracle, n=40)
    victim = service.shard_of(7)
    service.kill_shard(victim)
    # Point reads fail over to the replica; set queries stay complete.
    assert service.location_of(7, 3.0) == oracle.location_of(7, 3.0)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # degradation would be a bug here
        assert service.within(0.0, Y_MAX, 0.0, 8.0) == oracle.within(
            0.0, Y_MAX, 0.0, 8.0
        )
        assert service.nearest(250.0, 4.0, k=5) == oracle.nearest(
            250.0, 4.0, k=5
        )
    # Writes keep landing on the surviving replica.
    service.report(7, 300.0, 1.0, 6.0)
    oracle.report(7, 300.0, 1.0, 6.0)
    assert service.location_of(7, 8.0) == oracle.location_of(7, 8.0)


def test_recovered_shard_is_byte_identical_when_nothing_changed():
    service = make_service(shards=4, replication=2)
    rng = seed_population(service, n=50)
    for _ in range(30):  # cross some checkpoint boundaries
        oid = rng.randrange(50)
        service.report(
            oid, rng.uniform(0.0, Y_MAX), rng.uniform(V_MIN, V_MAX),
            rng.uniform(1.0, 9.0),
        )
    victim = 2
    before = population_to_json(service._shards[victim].objects())
    before_now = service._shards[victim].now
    service.kill_shard(victim, reason="crash drill")
    stats = service.recover_shard(victim)
    # No writes happened while down: pure checkpoint + WAL replay, and
    # the rebuilt shard serializes to exactly the pre-crash bytes.
    assert stats["reconciled"] == 0 and stats["dropped"] == 0
    assert population_to_json(service._shards[victim].objects()) == before
    assert service._shards[victim].now == before_now


def test_recovery_reconciles_writes_that_landed_on_survivors():
    service = make_service(shards=4, replication=2)
    oracle = MotionDatabase(Y_MAX, V_MIN, V_MAX)
    rng = seed_population(service, oracle, n=48)
    victim = 1
    service.kill_shard(victim, reason="maintenance gone wrong")
    # Life goes on: updates, departures and arrivals, some of which
    # belong to groups that include the dead shard.
    for oid in range(0, 48, 3):
        y0 = rng.uniform(0.0, Y_MAX)
        v = rng.uniform(V_MIN, V_MAX)
        service.report(oid, y0, v, 12.0)
        oracle.report(oid, y0, v, 12.0)
    for oid in (5, 11):
        service.deregister(oid)
        oracle.deregister(oid)
    stats = service.recover_shard(victim)
    assert stats["reconciled"] > 0 or stats["dropped"] > 0
    # The proof the shard caught up: kill the *other* member of each
    # of its groups, leaving the recovered shard the only copy, and
    # the answers must still match the oracle exactly.
    service.kill_shard((victim + 1) % 4)
    service.kill_shard((victim - 1) % 4)
    for y1 in (0.0, 300.0, 600.0):
        got = service.within(y1, y1 + 350.0, 12.0, 25.0)
        expected = oracle.within(y1, y1 + 350.0, 12.0, 25.0)
        value = got.value if isinstance(got, PartialResult) else got
        # Objects wholly owned by the two freshly-killed groups are
        # legitimately unavailable; everything the recovered shard is
        # responsible for must be present and current.
        assert value <= expected
        for oid in value:
            assert service.location_of(oid, 20.0) == oracle.location_of(
                oid, 20.0
            )
    must_serve = {
        oid for oid in oracle._motions
        if victim in service.replica_group(service.shard_of(oid))
    }
    served = service.within(0.0, Y_MAX, 12.0, 30.0)
    value = (
        served.value if isinstance(served, PartialResult) else served
    )
    assert must_serve <= value


def test_whole_group_dead_write_raises_and_rolls_back():
    service = make_service(shards=4, replication=2)
    seed_population(service, n=20)
    service.kill_shard(0)
    service.kill_shard(1)  # group of primary 0 is {0, 1}: fully dead
    doomed = next(
        oid for oid in range(2000, 2100)
        if service.router.route(
            oid, service._catalog_motion[0]
        ) == 0
    )
    with pytest.raises(ShardUnavailableError):
        service.register(doomed, 50.0, 1.0, 0.0)
    with pytest.raises(ObjectNotFoundError):
        service.location_of(doomed, 0.0)  # rollback left no catalog entry
    for shard in service.down_shards():
        service.recover_shard(shard)
    service.register(doomed, 50.0, 1.0, 0.0)
    assert service.location_of(doomed, 0.0) == 50.0


def test_replication_factor_validation_and_stats():
    with pytest.raises(ValueError):
        make_service(shards=2, replication=3)
    service = make_service(shards=3, replication=2)
    assert service.replica_group(2) == [2, 0]
    ft = service.service_stats()["fault_tolerance"]
    assert ft["replication_factor"] == 2
    assert ft["down_shards"] == []
    assert [h["status"] for h in ft["health"]] == ["up"] * 3
    with pytest.raises(ValueError):
        service.recover_shard(0)  # not down
