"""Smoke tests: every shipped example must run cleanly end to end."""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


def test_quickstart_runs(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "indexed 5 vehicles" in out
    assert "-> vehicles" in out


def test_route_network_runs(capsys):
    run_example("route_network.py")
    out = capsys.readouterr().out
    assert "indexed 600 vehicles" in out
    assert "vehicle 0 shows up on the connector" in out


@pytest.mark.slow
def test_traffic_monitoring_runs(capsys):
    run_example("traffic_monitoring.py")
    out = capsys.readouterr().out
    assert "congestion forecast" in out
    assert "all methods agree" in out


@pytest.mark.slow
def test_mobile_cells_runs(capsys):
    run_example("mobile_cells.py")
    out = capsys.readouterr().out
    assert "indexed 2000 phones" in out
    assert "MOR1 window" in out


def test_fleet_dispatch_runs(capsys):
    run_example("fleet_dispatch.py")
    out = capsys.readouterr().out
    assert "registered 400 vehicles" in out
    assert "closest couriers" in out
    assert "archived" in out


def test_benchmark_walkthrough_runs(capsys):
    run_example("benchmark_walkthrough.py")
    out = capsys.readouterr().out
    assert "Figure 6 (miniature)" in out
    assert "sanity: the segment baseline loses" in out
