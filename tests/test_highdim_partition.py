"""Tests for the d-dimensional partition tree (§4.2's 4-D structure)."""

import random

import pytest

from repro.core import (
    LinearMotion2D,
    MORQuery2D,
    MobileObject2D,
    brute_force_2d,
    hough_x_2d,
    matches_2d,
)
from repro.io_sim import DiskSimulator
from repro.kdtree import Orthotope, ProductRegion, UnionRegion, WedgeRegion
from repro.partition.highdim import HDPartitionTree, partition_nd
from repro.twod.planar import axis_wedge

V_CAP = 2.0


def planar_duals(rng, n):
    objects = []
    for oid in range(n):
        motion = LinearMotion2D(
            rng.uniform(0, 1000), rng.uniform(0, 1000),
            rng.uniform(-V_CAP, V_CAP), rng.uniform(-V_CAP, V_CAP),
            0.0,
        )
        objects.append(MobileObject2D(oid, motion))
    entries = [(hough_x_2d(o.motion), o.oid) for o in objects]
    return objects, entries


def planar_region(query):
    parts = []
    for sx in (1, -1):
        for sy in (1, -1):
            parts.append(
                ProductRegion((
                    WedgeRegion(axis_wedge(query.x_query, sx, V_CAP), 0, 1),
                    WedgeRegion(axis_wedge(query.y_query, sy, V_CAP), 2, 3),
                ))
            )
    return UnionRegion(tuple(parts))


class TestPartitionND:
    def test_covers_and_bounds(self):
        rng = random.Random(3)
        entries = [
            (tuple(rng.uniform(0, 10) for _ in range(4)), i)
            for i in range(300)
        ]
        cells = partition_nd(entries, 16)
        covered = sorted(oid for cell, _ in cells for _, oid in cell)
        assert covered == list(range(300))
        assert len(cells) <= 16
        for cell, (lo, hi) in cells:
            for point, _ in cell:
                assert all(l <= x <= h for l, x, h in zip(lo, point, hi))

    def test_validation_and_degenerate(self):
        with pytest.raises(ValueError):
            partition_nd([], 0)
        same = [((1.0, 1.0, 1.0), i) for i in range(20)]
        cells = partition_nd(same, 8)
        assert sum(len(c) for c, _ in cells) == 20


class TestHDPartitionTree:
    def test_box_queries_4d(self):
        rng = random.Random(5)
        entries = [
            (tuple(rng.uniform(0, 100) for _ in range(4)), i)
            for i in range(800)
        ]
        tree = HDPartitionTree(
            DiskSimulator(), entries, dims=4, leaf_capacity=16
        )
        tree.check_invariants()
        for _ in range(20):
            lo = tuple(rng.uniform(0, 60) for _ in range(4))
            hi = tuple(l + rng.uniform(10, 40) for l in lo)
            box = Orthotope(lo, hi)
            expected = sorted(
                oid for p, oid in entries if box.contains(p)
            )
            assert sorted(tree.query(box)) == expected

    def test_planar_wedge_union_candidates_are_exact_after_filter(self):
        """The §4.2 pipeline: 4-D duals, wedge-product union, exact filter."""
        rng = random.Random(7)
        objects, entries = planar_duals(rng, 500)
        motions = {o.oid: o.motion for o in objects}
        tree = HDPartitionTree(
            DiskSimulator(), entries, dims=4, leaf_capacity=16
        )
        for _ in range(20):
            x1 = rng.uniform(0, 850)
            y1 = rng.uniform(0, 850)
            t1 = rng.uniform(5, 30)
            query = MORQuery2D(x1, x1 + 150, y1, y1 + 150, t1, t1 + 20)
            candidates = set(tree.query(planar_region(query)))
            exact = brute_force_2d(objects, query)
            assert exact <= candidates  # no false negatives
            filtered = {
                oid for oid in candidates if matches_2d(motions[oid], query)
            }
            assert filtered == exact

    def test_query_io_sublinear(self):
        """Thin 4-D queries must cost far below a full scan (the
        O(n^{3/4}) regime §4.2 cites)."""
        rng = random.Random(11)
        entries = [
            (tuple(rng.uniform(0, 100) for _ in range(4)), i)
            for i in range(4000)
        ]
        disk = DiskSimulator(buffer_pages=0)
        tree = HDPartitionTree(disk, entries, dims=4, leaf_capacity=16)
        total_pages = disk.pages_in_use
        disk.clear_buffer()
        before = disk.stats.snapshot()
        thin = Orthotope((40, 0, 0, 0), (45, 100, 100, 100))
        tree.query(thin)
        delta = disk.stats.snapshot() - before
        assert delta.reads < 0.6 * total_pages

    def test_validation(self):
        disk = DiskSimulator()
        with pytest.raises(ValueError):
            HDPartitionTree(disk, [], dims=0)
        with pytest.raises(ValueError):
            HDPartitionTree(disk, [((1.0, 2.0), 0)], dims=3)
        with pytest.raises(ValueError):
            HDPartitionTree(disk, [], dims=2, leaf_capacity=1)

    def test_empty(self):
        tree = HDPartitionTree(DiskSimulator(), [], dims=4)
        assert len(tree) == 0
        assert tree.query(Orthotope((0,) * 4, (1,) * 4)) == []
