"""Tests for speed-limited terrain zones (§7 generalization)."""

import random

import pytest

from repro.core import LinearMotion1D, MORQuery1D, MobileObject1D, brute_force_1d
from repro.errors import InvalidMotionError, ObjectNotFoundError
from repro.extensions.zones import SpeedZones, ZonedForestIndex

# A city stretch (slow) between two highway stretches.
ZONES = SpeedZones(
    y_max=1000.0,
    boundaries=(400.0, 600.0),
    limits=(1.66, 0.5, 1.66),
    v_min=0.16,
)


class TestSpeedZones:
    def test_zone_lookup(self):
        assert ZONES.zone_count == 3
        assert ZONES.zone_of(0.0) == 0
        assert ZONES.zone_of(399.9) == 0
        assert ZONES.zone_of(400.0) == 1  # boundary belongs to the right
        assert ZONES.zone_of(599.0) == 1
        assert ZONES.zone_of(999.0) == 2
        assert ZONES.limit_of(500.0) == 0.5

    def test_zone_bounds(self):
        assert ZONES.zone_bounds(0) == (0.0, 400.0)
        assert ZONES.zone_bounds(1) == (400.0, 600.0)
        assert ZONES.zone_bounds(2) == (600.0, 1000.0)

    def test_validation(self):
        ZONES.validate(LinearMotion1D(100.0, 1.5))  # highway speed ok
        ZONES.validate(LinearMotion1D(500.0, -0.4))  # city speed ok
        with pytest.raises(InvalidMotionError):
            ZONES.validate(LinearMotion1D(500.0, 1.2))  # speeding in town
        with pytest.raises(InvalidMotionError):
            ZONES.validate(LinearMotion1D(100.0, 0.01))  # below v_min
        with pytest.raises(InvalidMotionError):
            ZONES.validate(LinearMotion1D(-5.0, 1.0))  # off terrain

    def test_structure_validation(self):
        with pytest.raises(InvalidMotionError):
            SpeedZones(1000.0, (500.0,), (1.0,), 0.16)  # limits mismatch
        with pytest.raises(InvalidMotionError):
            SpeedZones(1000.0, (600.0, 400.0), (1.0, 1.0, 1.0), 0.16)
        with pytest.raises(InvalidMotionError):
            SpeedZones(1000.0, (1000.0,), (1.0, 1.0), 0.16)  # on the border
        with pytest.raises(InvalidMotionError):
            SpeedZones(1000.0, (500.0,), (1.0, 0.05), 0.16)  # limit < v_min

    def test_next_boundary_time(self):
        motion = LinearMotion1D(390.0, 1.0, 0.0)  # heading into the city
        assert ZONES.next_boundary_time(motion) == pytest.approx(10.0)
        down = LinearMotion1D(500.0, -0.5, 0.0)
        assert ZONES.next_boundary_time(down) == pytest.approx(200.0)


def zoned_population(rng, n):
    objects = []
    for oid in range(n):
        y0 = rng.uniform(0, 1000)
        limit = ZONES.limit_of(y0)
        speed = rng.uniform(ZONES.v_min, limit)
        direction = 1 if rng.random() < 0.5 else -1
        objects.append(
            MobileObject1D(oid, LinearMotion1D(y0, direction * speed, 0.0))
        )
    return objects


class TestZonedForestIndex:
    def test_matches_brute_force(self):
        rng = random.Random(3)
        index = ZonedForestIndex(ZONES, c=2, leaf_capacity=8)
        objects = zoned_population(rng, 250)
        for obj in objects:
            index.insert(obj)
        assert len(index) == 250
        assert sum(index.zone_populations()) == 250
        for _ in range(25):
            y1 = rng.uniform(0, 900)
            t1 = rng.uniform(0, 50)
            query = MORQuery1D(y1, y1 + rng.uniform(0, 300), t1, t1 + 30)
            assert index.query(query) == brute_force_1d(objects, query)

    def test_zone_rules_enforced(self):
        index = ZonedForestIndex(ZONES, c=2, leaf_capacity=8)
        with pytest.raises(InvalidMotionError):
            index.insert(MobileObject1D(1, LinearMotion1D(500.0, 1.2)))
        index.insert(MobileObject1D(1, LinearMotion1D(500.0, 0.4)))
        with pytest.raises(ObjectNotFoundError):
            index.delete(2)

    def test_boundary_update_moves_zones(self):
        index = ZonedForestIndex(ZONES, c=2, leaf_capacity=8)
        # Enter the city at the boundary: re-register with a legal speed.
        index.insert(MobileObject1D(1, LinearMotion1D(390.0, 1.0, 0.0)))
        assert index.zone_populations() == [1, 0, 0]
        crossing_time = ZONES.next_boundary_time(LinearMotion1D(390.0, 1.0, 0.0))
        index.update(
            MobileObject1D(1, LinearMotion1D(400.0, 0.4, crossing_time))
        )
        assert index.zone_populations() == [0, 1, 0]
        assert index.query(MORQuery1D(395.0, 420.0, 10.0, 60.0)) == {1}

    def test_tighter_bands_reduce_waste(self):
        """The geographic analogue of velocity clustering: the slow zone's
        forest has a tiny spread factor."""
        rng = random.Random(7)
        index = ZonedForestIndex(ZONES, c=4, leaf_capacity=16)
        flat = ZonedForestIndex(
            SpeedZones(1000.0, (), (1.66,), 0.16), c=4, leaf_capacity=16
        )
        objects = zoned_population(rng, 300)
        for obj in objects:
            index.insert(obj)
            flat.insert(obj)
        zoned_waste = flat_waste = 0
        for _ in range(40):
            # Queries inside the slow city stretch.
            y1 = rng.uniform(410, 540)
            query = MORQuery1D(y1, y1 + 50, 10.0, 30.0)
            for target, bucket in ((index, "zoned"), (flat, "flat")):
                fetched = exact = 0
                for forest in target._forests:
                    f, e = forest.approximation_overhead(query)
                    fetched += f
                    exact += e
                if bucket == "zoned":
                    zoned_waste += fetched - exact
                else:
                    flat_waste += fetched - exact
        assert zoned_waste < flat_waste
