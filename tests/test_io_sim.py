"""Unit tests for the paged-storage simulator and I/O accounting."""

import pytest

from repro.errors import PageNotFoundError, PageOverflowError
from repro.io_sim import (
    BPTREE_ENTRY,
    DiskSimulator,
    LRUBuffer,
    RSTAR_SEGMENT,
    RecordLayout,
    page_capacity,
)


class TestPage:
    def test_append_until_full(self):
        disk = DiskSimulator()
        page = disk.allocate(capacity=3)
        for i in range(3):
            page.append(i)
        assert page.is_full
        assert page.free_slots == 0
        with pytest.raises(PageOverflowError):
            page.append(99)

    def test_len_and_repr(self):
        disk = DiskSimulator()
        page = disk.allocate(capacity=5)
        page.append("a")
        assert len(page) == 1
        assert "1/5" in repr(page)

    def test_zero_capacity_rejected(self):
        disk = DiskSimulator()
        with pytest.raises(ValueError):
            disk.allocate(capacity=0)


class TestDiskSimulator:
    def test_allocation_counts_one_write(self):
        disk = DiskSimulator()
        disk.allocate(capacity=10)
        assert disk.stats.writes == 1
        assert disk.stats.reads == 0

    def test_read_miss_counts(self):
        disk = DiskSimulator(buffer_pages=0)
        page = disk.allocate(capacity=10)
        disk.read(page.pid)
        assert disk.stats.reads == 1

    def test_buffered_read_is_free(self):
        disk = DiskSimulator(buffer_pages=4)
        page = disk.allocate(capacity=10)  # allocation buffers the page
        disk.read(page.pid)
        assert disk.stats.reads == 0
        assert disk.stats.buffer_hits == 1

    def test_clear_buffer_forces_reads(self):
        disk = DiskSimulator(buffer_pages=4)
        page = disk.allocate(capacity=10)
        disk.clear_buffer()
        disk.read(page.pid)
        assert disk.stats.reads == 1

    def test_read_unknown_page(self):
        disk = DiskSimulator()
        with pytest.raises(PageNotFoundError):
            disk.read(12345)

    def test_free_removes_page(self):
        disk = DiskSimulator()
        page = disk.allocate(capacity=10)
        disk.free(page.pid)
        assert disk.pages_in_use == 0
        with pytest.raises(PageNotFoundError):
            disk.read(page.pid)
        with pytest.raises(PageNotFoundError):
            disk.free(page.pid)

    def test_write_unknown_page(self):
        disk = DiskSimulator()
        page = disk.allocate(capacity=10)
        disk.free(page.pid)
        with pytest.raises(PageNotFoundError):
            disk.write(page)

    def test_pages_and_bytes_in_use(self):
        disk = DiskSimulator(page_size=4096)
        for _ in range(3):
            disk.allocate(capacity=10)
        assert disk.pages_in_use == 3
        assert disk.bytes_in_use == 3 * 4096

    def test_snapshot_diff(self):
        disk = DiskSimulator(buffer_pages=0)
        page = disk.allocate(capacity=10)
        before = disk.stats.snapshot()
        disk.read(page.pid)
        disk.write(page)
        delta = disk.stats.snapshot() - before
        assert delta.reads == 1
        assert delta.writes == 1
        assert delta.total == 2

    def test_stats_reset(self):
        disk = DiskSimulator()
        disk.allocate(capacity=10)
        disk.stats.reset()
        assert disk.stats.total == 0


class TestLRUBuffer:
    def test_eviction_order(self):
        disk = DiskSimulator(buffer_pages=0)
        pages = [disk.allocate(2) for _ in range(3)]
        buf = LRUBuffer(capacity=2)
        buf.put(pages[0])
        buf.put(pages[1])
        buf.get(pages[0].pid)  # refresh page 0
        buf.put(pages[2])  # evicts page 1
        assert pages[0].pid in buf
        assert pages[1].pid not in buf
        assert pages[2].pid in buf

    def test_zero_capacity_never_stores(self):
        disk = DiskSimulator(buffer_pages=0)
        page = disk.allocate(2)
        buf = LRUBuffer(capacity=0)
        buf.put(page)
        assert len(buf) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUBuffer(capacity=-1)

    def test_clear(self):
        disk = DiskSimulator(buffer_pages=0)
        buf = LRUBuffer(capacity=4)
        buf.put(disk.allocate(2))
        buf.clear()
        assert len(buf) == 0

    def test_put_same_page_twice_keeps_single_entry(self):
        disk = DiskSimulator(buffer_pages=0)
        page = disk.allocate(2)
        buf = LRUBuffer(capacity=4)
        buf.put(page)
        buf.put(page)
        assert len(buf) == 1


class TestLayout:
    def test_paper_rstar_capacity(self):
        # Section 5: four endpoint numbers + a pointer in a 4096-byte page.
        assert RSTAR_SEGMENT.capacity(4096) == 204

    def test_paper_bptree_capacity(self):
        # Section 5: b-coordinate + speed + pointer => B = 341.
        assert BPTREE_ENTRY.capacity(4096) == 341

    def test_record_bytes(self):
        assert RSTAR_SEGMENT.record_bytes == 20
        assert BPTREE_ENTRY.record_bytes == 12

    def test_page_capacity_function(self):
        assert page_capacity(12, 4096) == 341
        with pytest.raises(ValueError):
            page_capacity(0)
        with pytest.raises(ValueError):
            page_capacity(8192, 4096)

    def test_tiny_page_rejected(self):
        layout = RecordLayout("big", fields=600)
        with pytest.raises(ValueError):
            layout.capacity(4096)
