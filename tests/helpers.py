"""Shared test helpers: small random mobile-object populations."""

from __future__ import annotations

import random
from typing import List

from repro.core import (
    LinearMotion1D,
    MobileObject1D,
    MORQuery1D,
    MotionModel,
    Terrain1D,
)

#: The paper's §5 parameters, scaled down to a 1000-unit terrain.
PAPER_MODEL = MotionModel(Terrain1D(1000.0), v_min=0.16, v_max=1.66)


def random_objects(
    rng: random.Random,
    n: int,
    model: MotionModel = PAPER_MODEL,
    t0_max: float = 100.0,
) -> List[MobileObject1D]:
    """Uniform population following the paper's generator (section 5)."""
    objects = []
    for oid in range(n):
        speed = rng.uniform(model.v_min, model.v_max)
        direction = 1 if rng.random() < 0.5 else -1
        motion = LinearMotion1D(
            y0=rng.uniform(0, model.terrain.y_max),
            v=direction * speed,
            t0=rng.uniform(0, t0_max),
        )
        objects.append(MobileObject1D(oid, motion))
    return objects


def random_queries(
    rng: random.Random,
    n: int,
    model: MotionModel = PAPER_MODEL,
    yq_max: float = 150.0,
    tw_max: float = 60.0,
    t_now: float = 100.0,
) -> List[MORQuery1D]:
    """Random future-window queries (paper's YQMAX / TW scheme)."""
    queries = []
    for _ in range(n):
        y1 = rng.uniform(0, model.terrain.y_max)
        y2 = min(y1 + rng.uniform(0, yq_max), model.terrain.y_max)
        t1 = t_now + rng.uniform(0, tw_max)
        t2 = min(t1 + rng.uniform(0, tw_max), t_now + tw_max)
        t2 = max(t1, t2)
        queries.append(MORQuery1D(y1, y2, t1, t2))
    return queries
