"""Units for the chaos layer: injector, breaker, retries, routing hint.

The fault machinery must itself be deterministic — a chaos run that
cannot be replayed cannot be debugged — so these tests pin the seeded
behaviour of :class:`FaultInjector`, the state machine of
:class:`CircuitBreaker` (driven by a fake clock), the backoff schedule
of :class:`RetryPolicy` (driven by a fake sleep), and the
``BatchExecutor._shard_hint`` contract that only *missing-object*
routing falls back — real routing bugs must propagate.
"""

import pytest

from repro.errors import InjectedFaultError, ObjectNotFoundError
from repro.service import (
    BatchExecutor,
    CircuitBreaker,
    Deregister,
    FaultInjector,
    FaultSpec,
    Register,
    RetryPolicy,
    ShardedMotionService,
    op_class_name,
)
from repro.service.executor import Nearest, ProximityPairs, SnapshotAt, Within


class TestFaultSpec:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultSpec(error_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(error_rate=0.6, latency_rate=0.6)
        with pytest.raises(ValueError):
            FaultSpec(crash_on_op=0)


class TestFaultInjector:
    def drain(self, injector, shard, ops):
        """Run ``ops`` operations, returning the fault kind per op."""
        outcomes = []
        for _ in range(ops):
            try:
                injector.on_op(shard, "op")
                outcomes.append("ok")
            except InjectedFaultError as exc:
                outcomes.append(exc.kind)
        return outcomes

    def test_same_seed_same_fault_sequence(self):
        spec = FaultSpec(error_rate=0.3)
        a = self.drain(FaultInjector(seed=9, default=spec), 0, 200)
        b = self.drain(FaultInjector(seed=9, default=spec), 0, 200)
        assert a == b
        assert "error" in a  # 200 draws at 0.3 must fire

    def test_shards_draw_independent_streams(self):
        spec = FaultSpec(error_rate=0.3)
        injector = FaultInjector(seed=9, default=spec)
        a = self.drain(injector, 0, 200)
        b = self.drain(injector, 1, 200)
        assert a != b

    def test_crash_on_nth_op_fires_once(self):
        injector = FaultInjector(
            seed=1, per_shard={2: FaultSpec(crash_on_op=5)}
        )
        outcomes = self.drain(injector, 2, 5)
        assert outcomes == ["ok"] * 4 + ["crash"]
        assert injector.crashed(2)
        injector.clear_crash(2)
        # One-shot: the same spec does not re-fire after recovery.
        assert self.drain(injector, 2, 20) == ["ok"] * 20
        assert not injector.crashed(2)
        assert injector.snapshot()["injected"]["crashes"] == 1

    def test_latency_spikes_use_injected_sleep(self):
        slept = []
        injector = FaultInjector(
            seed=3,
            default=FaultSpec(latency_rate=0.5, latency_s=0.25),
            sleep=slept.append,
        )
        self.drain(injector, 0, 100)
        assert slept and set(slept) == {0.25}
        assert injector.snapshot()["injected"]["latencies"] == len(slept)


class TestCircuitBreaker:
    def test_trips_after_threshold_and_half_opens(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=3, reset_after_s=1.0, clock=lambda: clock[0]
        )
        assert breaker.state == "closed" and breaker.allow()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        clock[0] = 1.5
        assert breaker.allow()  # half-open probe admitted
        assert breaker.state == "half-open"
        breaker.record_failure()  # probe failed: straight back to open
        assert not breaker.allow()
        clock[0] = 3.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_success_resets_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=lambda: 0.0)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"


class TestRetryPolicy:
    def test_retries_transient_with_exponential_backoff(self):
        delays = []
        policy = RetryPolicy(
            attempts=4, backoff_s=0.01, multiplier=2.0, sleep=delays.append
        )
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise InjectedFaultError("flaky")
            return "done"

        assert policy.run(flaky) == "done"
        assert delays == [0.01, 0.02]

    def test_exhausted_retries_reraise_last(self):
        policy = RetryPolicy(attempts=2, sleep=lambda s: None)

        def always():
            raise InjectedFaultError("still flaky")

        with pytest.raises(InjectedFaultError):
            policy.run(always)

    def test_crash_kind_is_never_retried(self):
        attempts = []
        policy = RetryPolicy(attempts=5, sleep=lambda s: None)

        def dead():
            attempts.append(1)
            raise InjectedFaultError("boom", kind="crash")

        with pytest.raises(InjectedFaultError):
            policy.run(dead)
        assert len(attempts) == 1


class TestShardHint:
    """Satellite fix: only ObjectNotFoundError falls back in routing."""

    def make_service(self):
        service = ShardedMotionService(1000.0, 0.16, 1.66, shards=3)
        service.register(1, 100.0, 1.0, 0.0)
        return service

    def test_unknown_deregister_groups_but_still_errors(self):
        service = self.make_service()
        with BatchExecutor(service) as executor:
            assert executor._shard_hint(Deregister(424242)) == 0
            (result,) = executor.run([Deregister(424242)])
        assert not result.ok
        assert isinstance(result.error, ObjectNotFoundError)

    def test_real_routing_bug_propagates(self):
        service = self.make_service()
        original = service.shard_of

        def broken(oid):
            raise RuntimeError("catalog corrupted")

        service.shard_of = broken
        try:
            with BatchExecutor(service) as executor:
                with pytest.raises(RuntimeError):
                    executor._shard_hint(Deregister(1))
        finally:
            service.shard_of = original

    def test_failed_ops_land_in_metrics(self):
        service = self.make_service()
        with BatchExecutor(service) as executor:
            results = executor.run([
                Register(1, 100.0, 1.0, 0.0),  # duplicate
                Deregister(777),               # missing
            ])
        assert not any(result.ok for result in results)
        failed = service.metrics.snapshot()["failed_ops"]
        assert failed == {"register": 1, "deregister": 1}


def test_op_class_names_match_service_spans():
    assert op_class_name(Register(1, 0.0, 1.0, 0.0)) == "register"
    assert op_class_name(Deregister(1)) == "deregister"
    assert op_class_name(SnapshotAt(0.0, 1.0, 2.0)) == "snapshot_at"
    assert op_class_name(Within(0.0, 1.0, 2.0, 3.0)) == "within"
    assert op_class_name(Nearest(0.0, 1.0)) == "nearest"
    assert op_class_name(ProximityPairs(1.0, 0.0, 1.0)) == "proximity_pairs"
