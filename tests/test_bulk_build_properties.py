"""Property tests: bulk-built index generations ≡ incrementally built.

The STR-style bulk path (:meth:`HoughYForestIndex.bulk_build`, the
rotating index's ``bulk_factory`` generations, the hybrid band split's
grouped writes) is a pure performance alternative — every query must
answer exactly as if the population had arrived one ``insert`` at a
time.  Hypothesis drives the population shapes; probe grids compare
the answers set-for-set.  Degenerate shapes the packing code must not
trip over are pinned explicitly: empty input, a single object, an
all-equal-slope fleet (every tree key collides on ``b`` and ordering
falls to the oid tiebreak), and ``v = 0`` objects riding the hybrid
slow band.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LinearMotion1D,
    MobileObject1D,
    MORQuery1D,
    MotionModel,
    Terrain1D,
    brute_force_1d,
)
from repro.errors import DuplicateObjectError
from repro.indexes import DualKDTreeIndex, RotatingIndex
from repro.indexes.hough_y_forest import HoughYForestIndex
from repro.indexes.hybrid import HybridIndex

pytestmark = pytest.mark.writebatch

Y_MAX, V_MIN, V_MAX = 100.0, 0.16, 1.66
MODEL = MotionModel(Terrain1D(Y_MAX), v_min=V_MIN, v_max=V_MAX)


def probe_queries():
    """A fixed probe grid covering bands, instants and long windows."""
    queries = []
    for y1 in (0.0, 20.0, 45.0, 70.0):
        y2 = min(y1 + 30.0, Y_MAX)
        for t1, t2 in ((0.0, 0.0), (2.0, 6.0), (5.0, 30.0)):
            queries.append(MORQuery1D(y1, y2, t1, t2))
    queries.append(MORQuery1D(0.0, Y_MAX, 0.0, 120.0))
    return queries


def assert_same_answers(bulk, incremental, population):
    for query in probe_queries():
        want = incremental.query(query)
        got = bulk.query(query)
        assert got == want, f"bulk diverged on {query}"
        # Both must contain the exact answer (the forest approximates
        # from above: supersets only, never a miss).
        exact = brute_force_1d(population, query)
        assert exact <= got


@st.composite
def populations(draw, min_size=0, max_size=40, equal_slope=False):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    fixed_v = None
    if equal_slope:
        speed = draw(st.floats(min_value=V_MIN, max_value=V_MAX,
                               allow_nan=False, allow_infinity=False))
        sign = draw(st.sampled_from([1.0, -1.0]))
        fixed_v = sign * speed
    objects = []
    for oid in range(n):
        y0 = draw(st.floats(min_value=0.0, max_value=Y_MAX,
                            allow_nan=False, allow_infinity=False))
        if fixed_v is None:
            speed = draw(st.floats(min_value=V_MIN, max_value=V_MAX,
                                   allow_nan=False, allow_infinity=False))
            sign = draw(st.sampled_from([1.0, -1.0]))
            v = sign * speed
        else:
            v = fixed_v
        t0 = draw(st.floats(min_value=0.0, max_value=5.0,
                            allow_nan=False, allow_infinity=False))
        objects.append(MobileObject1D(oid, LinearMotion1D(y0, v, t0)))
    return objects


# -- forest bulk_build ---------------------------------------------------------


class TestForestBulkBuild:
    @settings(max_examples=40, deadline=None)
    @given(population=populations())
    def test_bulk_build_equals_incremental(self, population):
        incremental = HoughYForestIndex(MODEL, c=2)
        for obj in population:
            incremental.insert(obj)
        bulk = HoughYForestIndex.bulk_build(MODEL, population, c=2)
        assert len(bulk) == len(incremental) == len(population)
        assert_same_answers(bulk, incremental, population)

    @settings(max_examples=20, deadline=None)
    @given(population=populations(min_size=2, equal_slope=True))
    def test_all_equal_slope_fleet(self, population):
        """Every tree key shares one ``b`` slope structure: ordering
        falls entirely to the oid tiebreak, a classic sort-stability
        trap for pack-based builders."""
        incremental = HoughYForestIndex(MODEL, c=2)
        for obj in population:
            incremental.insert(obj)
        bulk = HoughYForestIndex.bulk_build(MODEL, population, c=2)
        assert_same_answers(bulk, incremental, population)

    @settings(max_examples=20, deadline=None)
    @given(population=populations(min_size=5, max_size=30),
           churn_seed=st.integers(min_value=0, max_value=2**16))
    def test_bulk_built_index_stays_maintainable(
        self, population, churn_seed
    ):
        """A bulk-built forest is a first-class index: scalar churn
        after the pack keeps matching an incremental twin."""
        bulk = HoughYForestIndex.bulk_build(MODEL, population, c=2)
        incremental = HoughYForestIndex(MODEL, c=2)
        for obj in population:
            incremental.insert(obj)
        rng = random.Random(churn_seed)
        live = {obj.oid: obj for obj in population}
        for _ in range(15):
            if live and rng.random() < 0.4:
                oid = rng.choice(sorted(live))
                del live[oid]
                bulk.delete(oid)
                incremental.delete(oid)
            else:
                oid = max(live, default=-1) + 1
                motion = LinearMotion1D(
                    rng.uniform(0, Y_MAX),
                    rng.choice([1.0, -1.0]) * rng.uniform(V_MIN, V_MAX),
                    rng.uniform(0, 5),
                )
                obj = MobileObject1D(oid, motion)
                live[oid] = obj
                bulk.insert(obj)
                incremental.insert(obj)
        assert_same_answers(bulk, incremental, list(live.values()))

    def test_empty_and_single(self):
        empty = HoughYForestIndex.bulk_build(MODEL, [], c=2)
        assert len(empty) == 0
        for query in probe_queries():
            assert empty.query(query) == set()
        lone = MobileObject1D(7, LinearMotion1D(50.0, 1.0, 0.0))
        single = HoughYForestIndex.bulk_build(MODEL, [lone], c=2)
        assert len(single) == 1
        assert single.query(MORQuery1D(0.0, Y_MAX, 0.0, 10.0)) == {7}
        single.delete(7)
        assert len(single) == 0

    def test_duplicate_oid_rejected(self):
        twice = [
            MobileObject1D(1, LinearMotion1D(10.0, 1.0, 0.0)),
            MobileObject1D(1, LinearMotion1D(20.0, -1.0, 0.0)),
        ]
        with pytest.raises(DuplicateObjectError):
            HoughYForestIndex.bulk_build(MODEL, twice, c=2)

    def test_page_accounting_tracks_fill(self):
        """Looser fill burns more leaves; the 0.8 rebuild default sits
        between fully-packed and split-happy incremental growth."""
        rng = random.Random(11)
        population = [
            MobileObject1D(
                oid,
                LinearMotion1D(
                    rng.uniform(0, Y_MAX),
                    rng.choice([1.0, -1.0]) * rng.uniform(V_MIN, V_MAX),
                    rng.uniform(0, 5),
                ),
            )
            for oid in range(400)
        ]
        pages = {
            fill: HoughYForestIndex.bulk_build(
                MODEL, population, c=2, leaf_capacity=8, fill=fill
            ).pages_in_use
            for fill in (1.0, 0.8, 0.5)
        }
        assert pages[1.0] <= pages[0.8] <= pages[0.5]
        incremental = HoughYForestIndex(MODEL, c=2, leaf_capacity=8)
        for obj in population:
            incremental.insert(obj)
        assert pages[0.8] <= incremental.pages_in_use


# -- rotating generations ------------------------------------------------------


def make_rotating(bulk: bool) -> RotatingIndex:
    factory = lambda t_ref: DualKDTreeIndex(  # noqa: E731
        MODEL, t_ref=t_ref, leaf_capacity=8
    )
    if not bulk:
        return RotatingIndex(MODEL, factory=factory)
    return RotatingIndex(
        MODEL,
        factory=factory,
        bulk_factory=lambda t_ref, objs: HoughYForestIndex.bulk_build(
            MODEL, objs, c=2
        ),
    )


class TestRotatingBulkGenerations:
    @settings(max_examples=25, deadline=None)
    @given(population=populations(min_size=2, max_size=30),
           rounds=st.integers(min_value=1, max_value=3))
    def test_bulk_generations_equal_incremental(self, population, rounds):
        """§3.2 rotation with bulk-built generations answers exactly
        like the per-insert build, across generation turnover."""
        bulk, plain = make_rotating(True), make_rotating(False)
        bulk.insert_batch(population)
        plain.insert_batch(population)
        period = MODEL.t_period
        current = list(population)
        for round_index in range(1, rounds + 1):
            current = [
                MobileObject1D(
                    obj.oid,
                    LinearMotion1D(
                        obj.motion.y0, obj.motion.v,
                        round_index * period,
                    ),
                )
                for obj in current
            ]
            bulk.update_batch(current)
            plain.update_batch(current)
            assert bulk.generation_epochs == plain.generation_epochs
        assert len(bulk) == len(plain) == len(population)
        # Probe inside the current epoch's window: generation routing
        # is by query time, so pre-rotation instants are out of scope.
        base = rounds * period
        for query in probe_queries():
            shifted = MORQuery1D(
                query.y1, query.y2, base + query.t1, base + query.t2
            )
            want = plain.query(shifted)
            got = bulk.query(shifted)
            exact = brute_force_1d(current, shifted)
            assert exact <= got and exact <= want

    def test_delete_batch_retires_bulk_generations(self):
        bulk = make_rotating(True)
        population = [
            MobileObject1D(oid, LinearMotion1D(10.0 * oid, 1.0, 0.0))
            for oid in range(8)
        ]
        bulk.insert_batch(population)
        assert bulk.generation_count == 1
        bulk.delete_batch([obj.oid for obj in population])
        assert len(bulk) == 0
        assert bulk.generation_count == 0


# -- hybrid band split ---------------------------------------------------------


class TestHybridBatchBands:
    def test_zero_velocity_rides_the_slow_band(self):
        """``v = 0`` is legal input to the hybrid split: the grouped
        write path must file it under the §3.6 slow store and answer
        exactly like scalar inserts."""
        rng = random.Random(5)
        population = []
        for oid in range(60):
            if oid % 3 == 0:
                v = 0.0 if oid % 6 == 0 else rng.uniform(0.0, V_MIN * 0.9)
            else:
                v = rng.choice([1.0, -1.0]) * rng.uniform(V_MIN, V_MAX)
            population.append(
                MobileObject1D(
                    oid,
                    LinearMotion1D(rng.uniform(0, Y_MAX), v,
                                   rng.uniform(0, 5)),
                )
            )
        batched = HybridIndex(
            MODEL, fast_factory=lambda m: HoughYForestIndex(m, c=2)
        )
        scalar = HybridIndex(
            MODEL, fast_factory=lambda m: HoughYForestIndex(m, c=2)
        )
        batched.insert_batch(population)
        for obj in population:
            scalar.insert(obj)
        for query in probe_queries():
            assert batched.query(query) == scalar.query(query)
        # Batched updates flip bands exactly like scalar ones.
        moved = [
            MobileObject1D(
                obj.oid,
                LinearMotion1D(obj.motion.y0, 1.0, obj.motion.t0 + 1.0),
            )
            for obj in population[:20]
        ]
        batched.update_batch(moved)
        for obj in moved:
            scalar.update(obj)
        for query in probe_queries():
            assert batched.query(query) == scalar.query(query)
        batched.delete_batch([obj.oid for obj in population])
        for obj in population:
            scalar.delete(obj.oid)
        assert len(batched) == len(scalar) == 0
