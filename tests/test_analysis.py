"""Tests for the analytical bound formulas."""

import math

import pytest

from repro.analysis import (
    expected_false_positives,
    hough_y_domain_area,
    linear_space_query_bound,
    log_b,
    mor1_expected_crossings,
    theorem1_space_bound,
)


class TestLogB:
    def test_values(self):
        assert log_b(1000, 10) == pytest.approx(3.0)
        assert log_b(1, 10) == 1.0
        assert log_b(0.5, 10) == 1.0
        assert log_b(5, 1000) == 1.0  # clamped to at least one level

    def test_validation(self):
        with pytest.raises(ValueError):
            log_b(100, 1)


class TestTheorem1:
    def test_space_bound(self):
        # delta = 1/2 in the plane: Omega(n) space.
        assert theorem1_space_bound(10000, 0.5, d=2) == pytest.approx(10000)
        # delta = 1 (linear scan): constant space suffices.
        assert theorem1_space_bound(10000, 1.0, d=2) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem1_space_bound(100, 0.0)
        with pytest.raises(ValueError):
            theorem1_space_bound(100, 1.5)
        with pytest.raises(ValueError):
            theorem1_space_bound(100, 0.5, d=0)

    def test_linear_space_query_bound(self):
        assert linear_space_query_bound(10000, d=2) == pytest.approx(100.0)
        assert linear_space_query_bound(10000, d=4) == pytest.approx(1000.0)
        with pytest.raises(ValueError):
            linear_space_query_bound(100, d=0)

    def test_tradeoff_consistency(self):
        """Faster queries need more space; the two bounds meet at δ = 1/2."""
        n = 4096
        spaces = [theorem1_space_bound(n, d, 2) for d in (0.3, 0.5, 0.8)]
        assert spaces == sorted(spaces, reverse=True)


class TestApproximationPredictions:
    def test_expected_false_positives(self):
        assert expected_false_positives(1000, 10.0, 100.0) == 100.0
        with pytest.raises(ValueError):
            expected_false_positives(1000, 10.0, 0.0)

    def test_hough_y_domain_area(self):
        area = hough_y_domain_area(0.5, 1.0, b_spread=100.0)
        assert area == pytest.approx((2.0 - 1.0) * 100.0)
        with pytest.raises(ValueError):
            hough_y_domain_area(0.0, 1.0, 100.0)
        with pytest.raises(ValueError):
            hough_y_domain_area(0.5, 1.0, 0.0)


class TestMOR1Estimate:
    def test_monotone_in_window_and_population(self):
        base = mor1_expected_crossings(100, 10.0, 0.5, 1.5, 1000.0)
        assert mor1_expected_crossings(200, 10.0, 0.5, 1.5, 1000.0) > base
        assert mor1_expected_crossings(100, 50.0, 0.5, 1.5, 1000.0) > base
        assert mor1_expected_crossings(1, 10.0, 0.5, 1.5, 1000.0) == 0.0

    def test_capped_by_all_pairs(self):
        estimate = mor1_expected_crossings(50, 1e9, 0.5, 1.5, 1000.0)
        assert estimate == pytest.approx(50 * 49 / 2)


class TestForestCostPredictor:
    def test_prediction_matches_measurement(self):
        import random

        from repro.analysis import ForestCostPredictor
        from repro.indexes import HoughYForestIndex
        from repro.workloads import SMALL_QUERIES, WorkloadGenerator

        gen = WorkloadGenerator(seed=55)
        objects = gen.initial_population(800)
        forest = HoughYForestIndex(gen.model, c=4, leaf_capacity=16)
        for obj in objects:
            forest.insert(obj)
        predictor = ForestCostPredictor.from_index(forest)
        for _ in range(40):
            query = gen.query(SMALL_QUERIES, now=40.0)
            fetched, _ = forest.approximation_overhead(query)
            # The prediction is exact by construction: the histogram IS
            # the stored distribution and the b-range is the same.
            assert predictor.predict_fetched(query) == fetched

    def test_prediction_stale_after_updates(self):
        from repro.analysis import ForestCostPredictor
        from repro.core import LinearMotion1D, MobileObject1D, MORQuery1D
        from repro.indexes import HoughYForestIndex
        from repro.workloads import paper_model

        model = paper_model()
        forest = HoughYForestIndex(model, c=2, leaf_capacity=8)
        forest.insert(MobileObject1D(1, LinearMotion1D(500.0, 1.0, 0.0)))
        predictor = ForestCostPredictor.from_index(forest)
        forest.insert(MobileObject1D(2, LinearMotion1D(510.0, 1.0, 0.0)))
        query = MORQuery1D(500.0, 540.0, 5.0, 20.0)
        fetched, _ = forest.approximation_overhead(query)
        # Snapshot semantics: the predictor reflects build-time contents.
        assert predictor.predict_fetched(query) <= fetched

    def test_leaf_read_estimate_positive(self):
        from repro.analysis import ForestCostPredictor
        from repro.indexes import HoughYForestIndex
        from repro.workloads import SMALL_QUERIES, WorkloadGenerator

        gen = WorkloadGenerator(seed=56)
        forest = HoughYForestIndex(gen.model, c=2, leaf_capacity=16)
        for obj in gen.initial_population(300):
            forest.insert(obj)
        predictor = ForestCostPredictor.from_index(forest)
        query = gen.query(SMALL_QUERIES, now=40.0)
        assert predictor.predict_leaf_reads(query) >= 0.0


class TestAdvisor:
    def make_profile(self, **overrides):
        from repro.analysis import WorkloadProfile

        base = dict(
            n=10000,
            query_extent_fraction=0.01,
            updates_per_query=0.5,
        )
        base.update(overrides)
        return WorkloadProfile(**base)

    def model(self):
        from repro.workloads import paper_model

        return paper_model()

    def test_selective_queries_get_the_forest(self):
        from repro.analysis import recommend

        rec = recommend(self.model(), self.make_profile())
        assert rec.method == "hough-y-forest"
        assert rec.params["c"] == 16  # 1% queries -> capped at 16
        assert "eq. 2" in rec.rationale or "subterrain" in rec.rationale

    def test_update_heavy_gets_kdtree(self):
        from repro.analysis import recommend

        rec = recommend(
            self.model(), self.make_profile(updates_per_query=20.0)
        )
        assert rec.method == "dual-kdtree"
        assert "updates per query" in rec.rationale

    def test_instant_bounded_gets_mor1(self):
        from repro.analysis import recommend

        # Crossings scale ~n^2 * T, so the restricted structure only
        # fits small populations or very short windows — exactly §3.6's
        # caveat.  n=500 with a 5-unit window stays near-linear.
        rec = recommend(
            self.model(),
            self.make_profile(
                n=500, instant_only=True, max_lookahead=5.0,
                updates_per_query=0.0,
            ),
        )
        assert rec.method == "mor1-staggered"
        assert rec.params["window"] == 5.0

    def test_instant_large_population_falls_through(self):
        from repro.analysis import recommend

        rec = recommend(
            self.model(),
            self.make_profile(
                n=100000, instant_only=True, max_lookahead=5.0,
                updates_per_query=0.0,
            ),
        )
        assert rec.method != "mor1-staggered"

    def test_instant_with_huge_window_falls_through(self):
        from repro.analysis import recommend

        rec = recommend(
            self.model(),
            self.make_profile(
                instant_only=True, max_lookahead=1e6, updates_per_query=0.0
            ),
        )
        assert rec.method != "mor1-staggered"  # quadratic crossings

    def test_wide_queries_get_kdtree(self):
        from repro.analysis import recommend

        rec = recommend(
            self.model(), self.make_profile(query_extent_fraction=0.5)
        )
        assert rec.method == "dual-kdtree"

    def test_choose_c_monotone(self):
        from repro.analysis import choose_c

        extents = [0.5, 0.25, 0.1, 0.05, 0.01, 0.001]
        cs = [choose_c(e) for e in extents]
        assert cs == sorted(cs)
        assert cs[0] == 2 and cs[-1] == 16

    def test_profile_validation(self):
        import pytest as _pytest

        from repro.analysis import WorkloadProfile

        with _pytest.raises(ValueError):
            WorkloadProfile(n=-1, query_extent_fraction=0.1,
                            updates_per_query=0.0)
        with _pytest.raises(ValueError):
            WorkloadProfile(n=1, query_extent_fraction=0.0,
                            updates_per_query=0.0)
        with _pytest.raises(ValueError):
            WorkloadProfile(n=1, query_extent_fraction=0.1,
                            updates_per_query=-1.0)


class TestAdversarialInstance:
    def test_points_in_convex_position(self):
        from repro.analysis.adversarial import convex_position_points

        points = convex_position_points(100, radius=10.0)
        assert len(points) == 100
        import math

        for (x, y), _ in points:
            assert math.hypot(x, y) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            convex_position_points(0)

    def test_slab_queries_capture_exact_arcs(self):
        from repro.analysis.adversarial import (
            convex_position_points,
            tangent_slab_queries,
        )

        n = 500
        points = convex_position_points(n)
        queries = tangent_slab_queries(n, answer_size=10, query_count=25)
        for query in queries:
            size = sum(1 for p, _ in points if query.contains(*p))
            assert 8 <= size <= 12  # ~answer_size, up to rounding

    def test_pairwise_intersections_tiny(self):
        from repro.analysis.adversarial import (
            convex_position_points,
            pairwise_intersection_stats,
            tangent_slab_queries,
        )

        n = 1000
        points = convex_position_points(n)
        queries = tangent_slab_queries(n, answer_size=12, query_count=30)
        avg, worst = pairwise_intersection_stats(points, queries)
        assert worst <= 2
        assert avg < 0.5

    def test_validation(self):
        from repro.analysis.adversarial import tangent_slab_queries

        with pytest.raises(ValueError):
            tangent_slab_queries(10, answer_size=0, query_count=5)
        with pytest.raises(ValueError):
            tangent_slab_queries(10, answer_size=20, query_count=5)
        with pytest.raises(ValueError):
            tangent_slab_queries(10, answer_size=2, query_count=0)
