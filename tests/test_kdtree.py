"""Tests for the external bucket kd-tree and its search regions."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConvexRegion, HalfPlane
from repro.errors import DuplicateObjectError, ObjectNotFoundError
from repro.io_sim import DiskSimulator
from repro.kdtree import KDTree, Orthotope, ProductRegion, WedgeRegion


def make_tree(dims=2, leaf_capacity=8, dir_capacity=16, buffer_pages=4):
    disk = DiskSimulator(buffer_pages=buffer_pages)
    return KDTree(disk, dims, leaf_capacity, dir_capacity), disk


class TestRegions:
    def test_orthotope(self):
        box = Orthotope((0, 0), (2, 2))
        assert box.contains((1, 1))
        assert not box.contains((3, 1))
        assert box.may_intersect_box((1, 1), (5, 5))
        assert not box.may_intersect_box((3, 3), (5, 5))
        with pytest.raises(ValueError):
            Orthotope((0, 0), (-1, 1))
        with pytest.raises(ValueError):
            Orthotope((0,), (1, 2))

    def test_wedge_region_dims(self):
        wedge = ConvexRegion((HalfPlane(1, 0, 1.0),))  # x <= 1
        region = WedgeRegion(wedge, dim_a=2, dim_b=3)
        assert region.contains((9, 9, 0.5, 0))
        assert not region.contains((0, 0, 2.0, 0))
        assert region.may_intersect_box((9, 9, 0, 0), (9, 9, 0.5, 0.5))
        assert not region.may_intersect_box((9, 9, 2, 0), (9, 9, 3, 1))

    def test_product_region(self):
        a = Orthotope((0,), (1,))

        class FirstDim:
            def may_intersect_box(self, lo, hi):
                return lo[0] <= 1 and hi[0] >= 0

            def contains(self, p):
                return 0 <= p[0] <= 1

        class SecondDim:
            def may_intersect_box(self, lo, hi):
                return lo[1] <= 5 and hi[1] >= 4

            def contains(self, p):
                return 4 <= p[1] <= 5

        region = ProductRegion((FirstDim(), SecondDim()))
        assert region.contains((0.5, 4.5))
        assert not region.contains((0.5, 9))
        assert not region.may_intersect_box((2, 4), (3, 5))


class TestKDTreeBasics:
    def test_validation(self):
        disk = DiskSimulator()
        with pytest.raises(ValueError):
            KDTree(disk, dims=0, leaf_capacity=8)
        with pytest.raises(ValueError):
            KDTree(disk, dims=2, leaf_capacity=1)

    def test_insert_search_delete(self):
        tree, _ = make_tree()
        tree.insert((1.0, 2.0), "a")
        tree.insert((5.0, 5.0), "b")
        hits = tree.search(Orthotope((0, 0), (3, 3)))
        assert [oid for _, oid in hits] == ["a"]
        assert tree.point_of("b") == (5.0, 5.0)
        assert tree.delete("a") == (1.0, 2.0)
        assert "a" not in tree

    def test_wrong_dimension_rejected(self):
        tree, _ = make_tree(dims=2)
        with pytest.raises(ValueError):
            tree.insert((1.0,), "a")

    def test_duplicate_oid(self):
        tree, _ = make_tree()
        tree.insert((1.0, 1.0), "a")
        with pytest.raises(DuplicateObjectError):
            tree.insert((2.0, 2.0), "a")

    def test_delete_missing(self):
        tree, _ = make_tree()
        with pytest.raises(ObjectNotFoundError):
            tree.delete("ghost")
        with pytest.raises(ObjectNotFoundError):
            tree.point_of("ghost")


class TestKDTreeBulk:
    def test_bulk_and_brute_force(self):
        tree, _ = make_tree(leaf_capacity=8)
        rng = random.Random(3)
        points = [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(500)]
        for i, p in enumerate(points):
            tree.insert(p, i)
        tree.check_invariants()
        for _ in range(40):
            x, y = rng.uniform(0, 90), rng.uniform(0, 90)
            box = Orthotope((x, y), (x + 15, y + 15))
            expected = {i for i, p in enumerate(points) if box.contains(p)}
            assert {oid for _, oid in tree.search(box)} == expected

    def test_duplicate_coordinates_split(self):
        """Many identical x's must not break median splitting."""
        tree, _ = make_tree(leaf_capacity=4)
        for i in range(60):
            tree.insert((1.0, float(i % 3)), i)
        tree.check_invariants()
        assert len(tree.items()) == 60

    def test_fully_degenerate_bucket_tolerated(self):
        tree, _ = make_tree(leaf_capacity=4)
        for i in range(12):
            tree.insert((1.0, 1.0), i)
        assert len(tree.items()) == 12
        hits = tree.search(Orthotope((0, 0), (2, 2)))
        assert len(hits) == 12

    def test_churn(self):
        tree, _ = make_tree(leaf_capacity=8)
        rng = random.Random(19)
        live = {}
        next_id = 0
        for step in range(1500):
            if live and rng.random() < 0.45:
                oid = rng.choice(list(live))
                tree.delete(oid)
                del live[oid]
            else:
                p = (rng.uniform(0, 100), rng.uniform(0, 100))
                tree.insert(p, next_id)
                live[next_id] = p
                next_id += 1
            if step % 250 == 0:
                tree.check_invariants()
        tree.check_invariants()
        box = Orthotope((20, 20), (60, 60))
        expected = {oid for oid, p in live.items() if box.contains(p)}
        assert {oid for _, oid in tree.search(box)} == expected

    def test_delete_everything_collapses_tree(self):
        tree, _ = make_tree(leaf_capacity=4)
        rng = random.Random(8)
        pts = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(100)]
        for i, p in enumerate(pts):
            tree.insert(p, i)
        order = list(range(100))
        rng.shuffle(order)
        for i in order:
            tree.delete(i)
        assert len(tree) == 0
        assert tree.directory_pages <= 1
        assert tree.search(Orthotope((0, 0), (10, 10))) == []


class TestKDTree4D:
    def test_product_wedge_search(self):
        """4-D dual search via the product of two 2-D wedges (paper §4.2)."""
        tree, _ = make_tree(dims=4, leaf_capacity=8)
        rng = random.Random(44)
        x_wedge = ConvexRegion(
            (HalfPlane(-1, 0, -0.2), HalfPlane(1, 0, 1.0))
        )  # vx in [0.2, 1]
        y_wedge = ConvexRegion(
            (HalfPlane(0, -1, 0.0), HalfPlane(0, 1, 50.0))
        )  # ay in [0, 50]
        region = ProductRegion(
            (WedgeRegion(x_wedge, 0, 1), WedgeRegion(y_wedge, 2, 3))
        )
        points = [
            (
                rng.uniform(-1, 2),
                rng.uniform(0, 100),
                rng.uniform(-1, 2),
                rng.uniform(0, 100),
            )
            for _ in range(400)
        ]
        for i, p in enumerate(points):
            tree.insert(p, i)
        expected = {i for i, p in enumerate(points) if region.contains(p)}
        assert {oid for _, oid in tree.search(region)} == expected


class TestKDTreeIO:
    def test_search_io_beats_full_scan(self):
        tree, disk = make_tree(leaf_capacity=16, dir_capacity=64, buffer_pages=0)
        rng = random.Random(12)
        for i in range(4000):
            tree.insert((rng.uniform(0, 1000), rng.uniform(0, 1000)), i)
        total_pages = disk.pages_in_use
        disk.clear_buffer()
        before = disk.stats.snapshot()
        tree.search(Orthotope((100, 100), (140, 140)))
        delta = disk.stats.snapshot() - before
        assert delta.reads < total_pages / 4


@settings(max_examples=25, deadline=None)
@given(
    points=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=50, allow_nan=False),
            st.floats(min_value=0, max_value=50, allow_nan=False),
        ),
        max_size=150,
    ),
    box=st.tuples(
        st.floats(min_value=0, max_value=50, allow_nan=False),
        st.floats(min_value=0, max_value=50, allow_nan=False),
        st.floats(min_value=0, max_value=25, allow_nan=False),
        st.floats(min_value=0, max_value=25, allow_nan=False),
    ),
)
def test_property_box_query_matches_brute_force(points, box):
    tree, _ = make_tree(leaf_capacity=4, dir_capacity=8)
    for i, p in enumerate(points):
        tree.insert(p, i)
    x, y, w, h = box
    query = Orthotope((x, y), (x + w, y + h))
    expected = {i for i, p in enumerate(points) if query.contains(p)}
    assert {oid for _, oid in tree.search(query)} == expected
    tree.check_invariants()


class TestDirectorySlotReuse:
    def test_freed_slots_are_reused(self):
        """Dissolved directory nodes leave slots that new splits reuse."""
        tree, disk = make_tree(leaf_capacity=4, dir_capacity=8)
        rng = random.Random(99)
        # Build up, tear down, build up again: page count must not
        # balloon from leaked directory slots.
        for round_ in range(3):
            for i in range(80):
                tree.insert((rng.uniform(0, 100), rng.uniform(0, 100)),
                            (round_, i))
            pages_full = disk.pages_in_use
            for i in range(80):
                tree.delete((round_, i))
            assert disk.pages_in_use <= pages_full
        tree.check_invariants()
        assert len(tree) == 0
