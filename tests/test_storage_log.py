"""DurableLog unit tests: framing, fsync policies, torn-tail recovery."""

import os
import struct

import pytest

from repro.errors import SimulatedCrashError
from repro.io_sim.layout import WAL_FRAME_HEADER, framed_record_bytes
from repro.service.faults import CrashPointInjector
from repro.storage import (
    DEFAULT_BATCH_INTERVAL,
    DurableLog,
    FsyncPolicy,
    pack_frame,
    scan_log,
)

pytestmark = pytest.mark.durability


# -- framing / scanning ----------------------------------------------------------


def test_frame_layout_matches_io_sim_header():
    frame = pack_frame(b"hello")
    assert len(frame) == WAL_FRAME_HEADER.record_bytes + 5
    assert len(frame) == framed_record_bytes(5)


def test_scan_roundtrips_all_records():
    payloads = [b"", b"a", b"x" * 300, b'{"kind": "insert"}']
    data = b"".join(pack_frame(p) for p in payloads)
    scanned, valid = scan_log(data)
    assert scanned == payloads
    assert valid == len(data)


def test_scan_stops_at_torn_header_and_payload():
    data = pack_frame(b"first") + pack_frame(b"second")
    whole = len(pack_frame(b"first"))
    # Torn inside the second frame's header.
    scanned, valid = scan_log(data[:whole + 3])
    assert scanned == [b"first"] and valid == whole
    # Torn inside the second frame's payload.
    scanned, valid = scan_log(data[:len(data) - 2])
    assert scanned == [b"first"] and valid == whole


def test_scan_stops_at_crc_mismatch_discarding_later_frames():
    data = pack_frame(b"aaaa") + pack_frame(b"bbbb") + pack_frame(b"cccc")
    first = len(pack_frame(b"aaaa"))
    corrupt = bytearray(data)
    corrupt[first + WAL_FRAME_HEADER.record_bytes] ^= 0xFF  # payload of #2
    scanned, valid = scan_log(bytes(corrupt))
    # Frame 3 is intact but unreachable: a log is only a prefix.
    assert scanned == [b"aaaa"] and valid == first


def test_scan_treats_garbage_length_as_torn():
    bogus = struct.pack("<II", 0xFFFFFFF0, 0) + b"junk"
    scanned, valid = scan_log(pack_frame(b"ok") + bogus)
    assert scanned == [b"ok"]
    assert valid == len(pack_frame(b"ok"))


# -- fsync policy ---------------------------------------------------------------


def test_fsync_policy_parsing():
    assert FsyncPolicy.parse("always").mode == "always"
    assert FsyncPolicy.parse("never").mode == "never"
    batch = FsyncPolicy.parse("batch:5")
    assert (batch.mode, batch.interval) == ("batch", 5)
    assert FsyncPolicy.parse("batch").interval == DEFAULT_BATCH_INTERVAL
    assert FsyncPolicy.parse("ALWAYS").mode == "always"
    policy = FsyncPolicy("batch", 3)
    assert FsyncPolicy.parse(policy) is policy
    assert policy.spec() == "batch:3"


@pytest.mark.parametrize("bad", ["sometimes", "batch:0", "batch:-1"])
def test_fsync_policy_rejects_bad_specs(bad):
    with pytest.raises(ValueError):
        FsyncPolicy.parse(bad)


def test_fsync_counts_match_policy(tmp_path):
    def fsyncs(policy, appends):
        log = DurableLog(str(tmp_path / f"{policy}.log"), fsync=policy)
        for i in range(appends):
            log.append(b"x%d" % i)
        count = log.fsyncs
        log.close()
        return count

    assert fsyncs("always", 6) == 6
    assert fsyncs("batch:3", 6) == 2
    assert fsyncs("never", 6) == 0


def test_sync_forces_durability_under_never(tmp_path):
    log = DurableLog(str(tmp_path / "wal.log"), fsync="never")
    log.append(b"one")
    assert log.synced_size == 0
    log.sync()
    assert log.synced_size == log.size
    assert log.fsyncs == 1
    log.close()


# -- reopen / recovery ----------------------------------------------------------


def test_reopen_recovers_payloads_and_appends_continue(tmp_path):
    path = str(tmp_path / "wal.log")
    log = DurableLog(path)
    log.append(b"r1")
    log.append(b"r2")
    log.close()
    reopened = DurableLog(path)
    assert reopened.recovered_payloads == [b"r1", b"r2"]
    reopened.append(b"r3")
    reopened.close()
    third = DurableLog(path)
    assert third.recovered_payloads == [b"r1", b"r2", b"r3"]
    third.close()


def test_open_truncates_torn_tail(tmp_path):
    path = str(tmp_path / "wal.log")
    log = DurableLog(path)
    log.append(b"keep-me")
    log.close()
    with open(path, "ab") as handle:
        handle.write(pack_frame(b"torn-record")[:-4])
    events = []
    reopened = DurableLog(path, on_event=lambda n, a: events.append((n, a)))
    assert reopened.recovered_payloads == [b"keep-me"]
    assert reopened.truncated_bytes == len(pack_frame(b"torn-record")) - 4
    assert ("torn_tail", 1) in events
    reopened.append(b"after")
    reopened.close()
    # The truncation left a clean prefix: both records now valid.
    final = DurableLog(path)
    assert final.recovered_payloads == [b"keep-me", b"after"]
    final.close()


# -- crash-point injection -------------------------------------------------------


def test_mid_record_crash_leaves_strict_prefix(tmp_path):
    path = str(tmp_path / "wal.log")
    log = DurableLog(
        path, crash_hook=CrashPointInjector().arm("log.mid_record", at=2)
    )
    log.append(b"committed")
    with pytest.raises(SimulatedCrashError):
        log.append(b"in-flight-record")
    with pytest.raises(ValueError):
        log.append(b"log is dead")
    size = os.path.getsize(path)
    whole = len(pack_frame(b"committed"))
    assert whole < size < whole + len(pack_frame(b"in-flight-record"))
    recovered = DurableLog(path)
    assert recovered.recovered_payloads == [b"committed"]
    recovered.close()


def test_mid_record_crash_with_explicit_prefix(tmp_path):
    path = str(tmp_path / "wal.log")
    injector = CrashPointInjector().arm("log.mid_record", write_prefix=0)
    log = DurableLog(path, crash_hook=injector)
    with pytest.raises(SimulatedCrashError):
        log.append(b"never-lands")
    assert os.path.getsize(path) == 0
    assert DurableLog(path).recovered_payloads == []


def test_pre_fsync_crash_with_page_cache_loss(tmp_path):
    """drop_unsynced models the power cut: unsynced appends vanish."""
    path = str(tmp_path / "wal.log")
    injector = CrashPointInjector().arm(
        "log.pre_fsync", at=3, drop_unsynced=True
    )
    log = DurableLog(path, fsync="never", crash_hook=injector)
    log.append(b"a")
    log.append(b"b")
    log.sync()  # durability floor: a, b
    with pytest.raises(SimulatedCrashError):
        log.append(b"c")
    recovered = DurableLog(path)
    assert recovered.recovered_payloads == [b"a", b"b"]
    recovered.close()


def test_post_fsync_crash_keeps_the_record(tmp_path):
    path = str(tmp_path / "wal.log")
    injector = CrashPointInjector().arm(
        "log.post_fsync", drop_unsynced=True
    )
    log = DurableLog(path, fsync="always", crash_hook=injector)
    with pytest.raises(SimulatedCrashError):
        log.append(b"durable")
    recovered = DurableLog(path)
    # fsync happened before the crash: even page-cache loss keeps it.
    assert recovered.recovered_payloads == [b"durable"]
    recovered.close()


def test_injector_fires_once_per_armed_point(tmp_path):
    injector = CrashPointInjector().arm("log.mid_record", at=2)
    log = DurableLog(str(tmp_path / "wal.log"), crash_hook=injector)
    log.append(b"first")  # arrival 1: armed at 2, no fire
    with pytest.raises(SimulatedCrashError):
        log.append(b"second")
    assert injector.fired == [("log.mid_record", 2)]
    assert injector.hits("log.mid_record") == 2
    reopened = DurableLog(str(tmp_path / "wal.log"), crash_hook=injector)
    reopened.append(b"third")  # disarmed: appends flow again
    assert reopened.recovered_payloads == [b"first"]
    reopened.close()
