"""Tests for external sorting and B+-tree bulk loading."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bptree import BPlusTree
from repro.io_sim import DiskSimulator
from repro.io_sim.extsort import RunFile, external_sort


class TestRunFile:
    def test_roundtrip(self):
        disk = DiskSimulator()
        run = RunFile(disk, page_capacity=4)
        run.append_all(range(10))
        assert list(run.scan()) == list(range(10))
        assert run.length == 10
        assert len(run.page_pids) == 3

    def test_destroy_frees_pages(self):
        disk = DiskSimulator()
        run = RunFile(disk, page_capacity=4)
        run.append_all(range(10))
        run.destroy()
        assert disk.pages_in_use == 0

    def test_empty(self):
        disk = DiskSimulator()
        run = RunFile(disk, page_capacity=4)
        run.append_all([])
        assert list(run.scan()) == []


class TestExternalSort:
    def test_sorts_correctly(self):
        disk = DiskSimulator()
        rng = random.Random(1)
        data = [rng.randint(0, 10**6) for _ in range(2000)]
        run = external_sort(disk, data, page_capacity=8, memory_pages=4)
        assert list(run.scan()) == sorted(data)

    def test_custom_key(self):
        disk = DiskSimulator()
        data = [("b", 2), ("a", 9), ("c", 1)]
        run = external_sort(
            disk, data, page_capacity=4, memory_pages=2,
            key=lambda r: r[1],
        )
        assert list(run.scan()) == [("c", 1), ("b", 2), ("a", 9)]

    def test_memory_validation(self):
        with pytest.raises(ValueError):
            external_sort(DiskSimulator(), [1], page_capacity=4, memory_pages=1)

    def test_io_has_pass_structure(self):
        """Sorting n pages with fan-in f takes ~n*(1+ceil(log_f(runs))) passes."""
        disk = DiskSimulator(buffer_pages=0)
        rng = random.Random(2)
        data = [rng.random() for _ in range(4096)]
        before = disk.stats.snapshot()
        run = external_sort(disk, data, page_capacity=16, memory_pages=4)
        delta = disk.stats.snapshot() - before
        data_pages = 4096 / 16  # 256 pages; 64 initial runs; fan-in 3
        # ceil(log_3 64) = 4 merge passes + run formation = 5 passes.
        # Each pass reads + writes every page once (2 I/Os per page).
        assert delta.total < 2 * data_pages * 7
        assert list(run.scan()) == sorted(data)

    def test_intermediate_runs_freed(self):
        disk = DiskSimulator()
        data = list(range(1000, 0, -1))
        run = external_sort(disk, data, page_capacity=8, memory_pages=3)
        # Only the final run's pages remain.
        assert disk.pages_in_use == len(run.page_pids)


class TestBulkLoad:
    def test_bulk_load_matches_incremental(self):
        items = [(i, i * 10) for i in range(500)]
        bulk = BPlusTree.bulk_load(
            DiskSimulator(), items, leaf_capacity=8, internal_capacity=8
        )
        bulk.check_invariants()
        assert len(bulk) == 500
        assert list(bulk.items()) == items
        assert bulk.range_search(100, 110) == [i * 10 for i in range(100, 111)]

    def test_bulk_load_empty_and_single(self):
        empty = BPlusTree.bulk_load(DiskSimulator(), [], leaf_capacity=8)
        assert len(empty) == 0
        empty.check_invariants()
        single = BPlusTree.bulk_load(DiskSimulator(), [(1, "a")], leaf_capacity=8)
        assert single.get(1) == "a"
        single.check_invariants()

    def test_bulk_load_rejects_unsorted(self):
        with pytest.raises(ValueError):
            BPlusTree.bulk_load(
                DiskSimulator(), [(2, 0), (1, 0)], leaf_capacity=8
            )
        with pytest.raises(ValueError):
            BPlusTree.bulk_load(
                DiskSimulator(), [(1, 0), (1, 1)], leaf_capacity=8
            )
        with pytest.raises(ValueError):
            BPlusTree.bulk_load(
                DiskSimulator(), [(1, 0)], leaf_capacity=8, fill=0.0
            )

    def test_bulk_load_fill_factor(self):
        items = [(i, i) for i in range(400)]
        full = BPlusTree.bulk_load(DiskSimulator(), items, leaf_capacity=10)
        loose_disk = DiskSimulator()
        loose = BPlusTree.bulk_load(
            loose_disk, items, leaf_capacity=10, fill=0.5
        )
        loose.check_invariants()
        assert loose_disk.pages_in_use > 400 / 10  # more, half-full leaves
        # Room for inserts without immediate splits.
        height_before = loose.height
        for i in range(400, 440):
            loose.insert(i, i)
        assert loose.height == height_before

    @pytest.mark.parametrize("fill", [0.5, 0.67, 0.8, 1.0])
    def test_bulk_load_fill_factor_sweep(self, fill):
        """Leaf packing honours the fill factor across the range the
        index layers actually use — 0.8 is the forest generation
        rebuild's ``REBUILD_FILL``."""
        n, capacity = 600, 10
        items = [(i, i) for i in range(n)]
        disk = DiskSimulator()
        tree = BPlusTree.bulk_load(
            disk, items, leaf_capacity=capacity, fill=fill
        )
        tree.check_invariants()
        assert list(tree.items()) == items
        # Page accounting: leaves ~= ceil(n / floor(capacity*fill));
        # allow the index levels on top but no silent over-packing.
        per_leaf = max(1, int(capacity * fill))
        min_leaves = -(-n // capacity)         # packed at 100%
        max_leaves = -(-n // per_leaf) + 1     # packed at `fill`
        assert min_leaves <= disk.pages_in_use
        assert disk.pages_in_use <= 2 * max_leaves  # leaves + index
        # A partial fill leaves headroom: appends at the right edge
        # must not immediately deepen the tree.
        if fill <= 0.8:
            height = tree.height
            for i in range(n, n + capacity - per_leaf):
                tree.insert(i, i)
            assert tree.height == height

    def test_bulk_then_mutate(self):
        items = [(i, i) for i in range(300)]
        tree = BPlusTree.bulk_load(
            DiskSimulator(), items, leaf_capacity=8, fill=0.75
        )
        rng = random.Random(3)
        shadow = dict(items)
        for _ in range(400):
            if shadow and rng.random() < 0.5:
                key = rng.choice(list(shadow))
                assert tree.delete(key) == shadow.pop(key)
            else:
                key = rng.randint(0, 1000)
                if key not in shadow:
                    shadow[key] = key
                    tree.insert(key, key)
        tree.check_invariants()
        assert dict(tree.items()) == shadow

    def test_bulk_load_io_is_linear(self):
        disk = DiskSimulator(buffer_pages=0)
        items = [(i, i) for i in range(4000)]
        before = disk.stats.snapshot()
        BPlusTree.bulk_load(disk, items, leaf_capacity=16)
        delta = disk.stats.snapshot() - before
        pages = 4000 / 16
        assert delta.total < 4 * pages  # one write per page + index levels


@settings(max_examples=30, deadline=None)
@given(
    keys=st.sets(st.integers(min_value=0, max_value=10**6), max_size=400),
    capacity=st.integers(min_value=2, max_value=32),
)
def test_property_bulk_load_equals_sorted_input(keys, capacity):
    items = [(k, k) for k in sorted(keys)]
    tree = BPlusTree.bulk_load(DiskSimulator(), items, leaf_capacity=capacity)
    tree.check_invariants()
    assert list(tree.items()) == items
