"""Tests for probabilistic route choices (§7 future work)."""

import pytest

from repro.twod import Route
from repro.workloads.route_workload import grid_network
from repro.workloads.routing_choices import (
    ProbabilisticRouteScenario,
    find_junctions,
)


class TestJunctions:
    def test_perpendicular_crossing(self):
        routes = [
            Route(1, ((0.0, 5.0), (10.0, 5.0))),
            Route(2, ((5.0, 0.0), (5.0, 10.0))),
        ]
        junctions = find_junctions(routes)
        assert len(junctions) == 1
        j = junctions[0]
        assert j.point == (5.0, 5.0)
        assert j.arc_on(1) == pytest.approx(5.0)
        assert j.arc_on(2) == pytest.approx(5.0)
        assert j.other_route(1) == 2
        assert j.other_route(2) == 1
        with pytest.raises(KeyError):
            j.arc_on(99)

    def test_parallel_routes_no_junction(self):
        routes = [
            Route(1, ((0.0, 0.0), (10.0, 0.0))),
            Route(2, ((0.0, 5.0), (10.0, 5.0))),
        ]
        assert find_junctions(routes) == []

    def test_grid_junction_count(self):
        # k horizontal x k vertical lanes cross k*k times.
        routes = grid_network(lanes=3)
        assert len(find_junctions(routes)) == 9

    def test_polyline_crossing_arc_positions(self):
        bent = Route(1, ((0.0, 0.0), (10.0, 0.0), (10.0, 10.0)))
        vertical = Route(2, ((5.0, -5.0), (5.0, 5.0)))
        junctions = find_junctions([bent, vertical])
        assert len(junctions) == 1
        assert junctions[0].arc_on(1) == pytest.approx(5.0)
        # Vertical route starts at (5, -5); the crossing (5, 0) is 5 along.
        assert junctions[0].arc_on(2) == pytest.approx(5.0)


class TestProbabilisticScenario:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProbabilisticRouteScenario(
                grid_network(lanes=2), n=10, switch_probability=1.5
            )

    def test_switches_happen_and_answers_stay_exact(self):
        scenario = ProbabilisticRouteScenario(
            grid_network(lanes=3),
            n=80,
            switch_probability=0.8,
            ticks=120,
            queries_per_instant=4,
            query_instants=2,
            seed=31,
        )
        scenario.run_with_choices(validate=True)
        assert scenario.switches_taken > 0

    def test_zero_probability_never_switches(self):
        scenario = ProbabilisticRouteScenario(
            grid_network(lanes=3),
            n=50,
            switch_probability=0.0,
            ticks=60,
            seed=37,
        )
        scenario.run_with_choices(validate=True)
        assert scenario.switches_taken == 0

    def test_higher_probability_more_switches(self):
        counts = {}
        for p in (0.2, 0.9):
            scenario = ProbabilisticRouteScenario(
                grid_network(lanes=3),
                n=120,
                switch_probability=p,
                ticks=200,
                seed=41,
            )
            scenario.run_with_choices()
            counts[p] = scenario.switches_taken
        assert counts[0.9] > counts[0.2]
