"""Failure injection: rejected operations must leave indexes unharmed.

Every failing operation (duplicate insert, invalid motion, missing
delete, malformed query) must be atomic: afterwards the index answers
exactly as before and its size/space accounting is unchanged.
"""

import random

import pytest

from repro.core import LinearMotion1D, MORQuery1D, MobileObject1D, brute_force_1d
from repro.errors import (
    DuplicateObjectError,
    InvalidMotionError,
    InvalidQueryError,
    ObjectNotFoundError,
)
from repro.service import FaultTolerantMotionService, ShardedMotionService
from repro.indexes import (
    DualKDTreeIndex,
    DualRTreeIndex,
    HoughYForestIndex,
    SegmentRTreeIndex,
)
from repro.indexes.partition_index import PartitionTreeIndex

from .helpers import PAPER_MODEL, random_objects, random_queries

FACTORIES = {
    "kdtree": lambda: DualKDTreeIndex(PAPER_MODEL, leaf_capacity=8),
    "rstar": lambda: DualRTreeIndex(PAPER_MODEL, page_capacity=8),
    "forest": lambda: HoughYForestIndex(PAPER_MODEL, c=3, leaf_capacity=8),
    "segment": lambda: SegmentRTreeIndex(PAPER_MODEL, page_capacity=8),
    "partition": lambda: PartitionTreeIndex(
        PAPER_MODEL, leaf_capacity=8, internal_capacity=16
    ),
}


@pytest.fixture(params=sorted(FACTORIES), ids=sorted(FACTORIES))
def loaded_index(request):
    rng = random.Random(77)
    objects = random_objects(rng, 120)
    index = FACTORIES[request.param]()
    for obj in objects:
        index.insert(obj)
    return index, objects, rng


def assert_unharmed(index, objects, rng):
    assert len(index) == len(objects)
    for query in random_queries(rng, 8):
        assert index.query(query) == brute_force_1d(objects, query)


class TestAtomicFailures:
    def test_duplicate_insert_leaves_state(self, loaded_index):
        index, objects, rng = loaded_index
        pages_before = index.pages_in_use
        with pytest.raises(DuplicateObjectError):
            index.insert(objects[0])
        assert index.pages_in_use == pages_before
        assert_unharmed(index, objects, rng)

    def test_invalid_motion_leaves_state(self, loaded_index):
        index, objects, rng = loaded_index
        bad_speed = MobileObject1D(9999, LinearMotion1D(10.0, 99.0, 0.0))
        off_terrain = MobileObject1D(9998, LinearMotion1D(-50.0, 1.0, 0.0))
        for bad in (bad_speed, off_terrain):
            with pytest.raises(InvalidMotionError):
                index.insert(bad)
        assert_unharmed(index, objects, rng)

    def test_missing_delete_leaves_state(self, loaded_index):
        index, objects, rng = loaded_index
        with pytest.raises(ObjectNotFoundError):
            index.delete(424242)
        assert_unharmed(index, objects, rng)

    def test_malformed_query_leaves_state(self, loaded_index):
        index, objects, rng = loaded_index
        with pytest.raises(InvalidQueryError):
            MORQuery1D(10.0, 0.0, 0.0, 1.0)  # rejected at construction
        with pytest.raises(InvalidQueryError):
            MORQuery1D(0.0, 10.0, 5.0, 1.0)
        assert_unharmed(index, objects, rng)

    def test_failed_update_then_real_update(self, loaded_index):
        """A failed update (bad new motion) must not half-delete."""
        index, objects, rng = loaded_index
        victim = objects[3]
        bad = MobileObject1D(victim.oid, LinearMotion1D(0.0, 77.0, 0.0))
        with pytest.raises(InvalidMotionError):
            index.update(bad)
        # update() is delete+insert (the paper's §3 discipline), so the
        # failed insert half leaves the object deleted; re-inserting the
        # original motion must restore exactness completely.
        if len(index) < len(objects):
            index.insert(victim)
        assert_unharmed(index, objects, rng)


# -- service-level atomicity -----------------------------------------------------

SERVICE_FACTORIES = {
    "sharded": lambda: ShardedMotionService(
        1000.0, 0.16, 1.66, shards=3
    ),
    "fault-tolerant-r2": lambda: FaultTolerantMotionService(
        1000.0, 0.16, 1.66, shards=3, replication_factor=2
    ),
}


@pytest.fixture(
    params=sorted(SERVICE_FACTORIES), ids=sorted(SERVICE_FACTORIES)
)
def loaded_service(request):
    rng = random.Random(78)
    service = SERVICE_FACTORIES[request.param]()
    for oid in range(40):
        service.register(
            oid,
            rng.uniform(0.0, 1000.0),
            rng.uniform(0.16, 1.66) * rng.choice((-1.0, 1.0)),
            0.0,
        )
    return service


def menu_snapshot(service):
    """Every shard's population plus the full query menu's answers —
    the state that a rejected operation must leave untouched."""
    return {
        "len": len(service),
        "populations": service.shard_populations(),
        "within": service.within(100.0, 700.0, 2.0, 20.0),
        "snapshot_at": service.snapshot_at(0.0, 500.0, 5.0),
        "nearest": service.nearest(333.0, 8.0, k=5),
        "pairs": service.proximity_pairs(10.0, 0.0, 15.0),
    }


class TestServiceAtomicFailures:
    """The index-level contract lifted to the (replicated) service:
    a rejected operation leaves every shard answering as before."""

    def test_duplicate_register_leaves_all_shards(self, loaded_service):
        before = menu_snapshot(loaded_service)
        with pytest.raises(InvalidMotionError):
            loaded_service.register(0, 400.0, 1.0, 3.0)
        assert menu_snapshot(loaded_service) == before

    def test_invalid_motion_register_leaves_all_shards(self, loaded_service):
        before = menu_snapshot(loaded_service)
        with pytest.raises(InvalidMotionError):
            loaded_service.register(9999, 400.0, 99.0, 3.0)  # over-speed
        assert menu_snapshot(loaded_service) == before
        # The catalog rolled back too: the oid is still registerable.
        loaded_service.register(9999, 400.0, 1.0, 3.0)
        assert 9999 in loaded_service.within(0.0, 1000.0, 3.0, 10.0)

    def test_missing_deregister_leaves_all_shards(self, loaded_service):
        before = menu_snapshot(loaded_service)
        with pytest.raises(ObjectNotFoundError):
            loaded_service.deregister(424242)
        assert menu_snapshot(loaded_service) == before

    def test_missing_report_leaves_all_shards(self, loaded_service):
        before = menu_snapshot(loaded_service)
        with pytest.raises(ObjectNotFoundError):
            loaded_service.report(424242, 100.0, 1.0, 5.0)
        assert menu_snapshot(loaded_service) == before

    def test_malformed_query_leaves_all_shards(self, loaded_service):
        before = menu_snapshot(loaded_service)
        with pytest.raises(InvalidQueryError):
            loaded_service.within(700.0, 100.0, 2.0, 20.0)  # y1 > y2
        with pytest.raises(InvalidQueryError):
            loaded_service.within(100.0, 700.0, 20.0, 2.0)  # t1 > t2
        assert menu_snapshot(loaded_service) == before
