"""Differential harness: sharded service ≡ single MotionDatabase.

Seeded randomized workloads (registers, motion reports, deregisters)
are replayed simultaneously into one ``MotionDatabase`` (the oracle)
and a ``ShardedMotionService`` at several shard counts; at every
checkpoint the full query menu must return *identical* results:

* ``within`` / ``snapshot_at`` — identical id sets;
* ``nearest`` — identical ranked ``(oid, distance)`` lists.  The
  tie-break is part of the contract: equal distances order by
  ascending object id, in both the single-database path
  (:func:`repro.extensions.neighbors.knn_at`) and the cross-shard
  merge re-rank;
* ``proximity_pairs`` — identical unordered pair sets, which is what
  exercises the cross-shard candidate exchange (pairs whose members
  live on different shards).
"""

import random

import pytest

from repro.engine import MotionDatabase
from repro.service import (
    BatchExecutor,
    Nearest,
    ProximityPairs,
    Register,
    Report,
    ShardedMotionService,
    SnapshotAt,
    VelocityRouter,
    Within,
)

Y_MAX, V_MIN, V_MAX = 1000.0, 0.16, 1.66


def random_motion(rng):
    speed = rng.uniform(V_MIN, V_MAX)
    direction = 1 if rng.random() < 0.5 else -1
    return rng.uniform(0.0, Y_MAX), direction * speed


def drive(rng, single, sharded, steps, check):
    """Replay one random trace into both engines, checking as we go."""
    live = set()
    next_oid = 0
    now = 0.0
    for step in range(steps):
        now += rng.uniform(0.0, 0.5)
        action = rng.random()
        if action < 0.5 or len(live) < 10:
            y0, v = random_motion(rng)
            single.register(next_oid, y0, v, now)
            sharded.register(next_oid, y0, v, now)
            live.add(next_oid)
            next_oid += 1
        elif action < 0.85:
            oid = rng.choice(sorted(live))
            y0, v = random_motion(rng)
            single.report(oid, y0, v, now)
            sharded.report(oid, y0, v, now)
        else:
            oid = rng.choice(sorted(live))
            single.deregister(oid)
            sharded.deregister(oid)
            live.remove(oid)
        if step % 25 == 24:
            check(single, sharded, rng, now)
    check(single, sharded, rng, now)


def full_menu_check(single, sharded, rng, now):
    for _ in range(3):
        y1 = rng.uniform(0.0, Y_MAX * 0.8)
        t1 = now + rng.uniform(0.0, 20.0)
        t2 = t1 + rng.uniform(0.0, 30.0)
        assert sharded.within(y1, y1 + 120.0, t1, t2) == single.within(
            y1, y1 + 120.0, t1, t2
        )
        assert sharded.snapshot_at(y1, y1 + 60.0, t1) == single.snapshot_at(
            y1, y1 + 60.0, t1
        )
    for k in (1, 3, 8):
        y = rng.uniform(0.0, Y_MAX)
        t = now + rng.uniform(0.0, 25.0)
        assert sharded.nearest(y, t, k) == single.nearest(y, t, k)
    t1 = now + rng.uniform(0.0, 5.0)
    d = rng.uniform(1.0, 6.0)
    assert sharded.proximity_pairs(d, t1, t1 + 15.0) == (
        single.proximity_pairs(d, t1, t1 + 15.0)
    )


@pytest.mark.parametrize("shards", [1, 2, 4, 7])
@pytest.mark.parametrize("seed", [11, 23, 37])
def test_hash_sharding_matches_single_database(shards, seed):
    rng = random.Random(seed)
    single = MotionDatabase(Y_MAX, V_MIN, V_MAX)
    sharded = ShardedMotionService(Y_MAX, V_MIN, V_MAX, shards=shards)
    drive(rng, single, sharded, steps=150, check=full_menu_check)
    # Every object lives on exactly one shard.
    populations = sharded.shard_populations()
    assert sum(len(p) for p in populations) == len(sharded) == len(single)
    union = set().union(*populations) if populations else set()
    assert union == {obj.oid for obj in single.objects()}


@pytest.mark.parametrize("seed", [5, 17])
def test_velocity_sharding_matches_single_database(seed):
    """Velocity routing migrates objects on speed changes; results
    must still match the oracle exactly."""
    rng = random.Random(seed)
    single = MotionDatabase(Y_MAX, V_MIN, V_MAX)
    sharded = ShardedMotionService(
        Y_MAX, V_MIN, V_MAX, shards=3, router="velocity"
    )
    drive(rng, single, sharded, steps=120, check=full_menu_check)
    populations = sharded.shard_populations()
    assert sum(len(p) for p in populations) == len(single)
    # Banding invariant: shard i only holds speeds in band i.
    router = sharded.router
    assert isinstance(router, VelocityRouter)
    for i, population in enumerate(populations):
        for oid in population:
            shard_db = sharded._shards[i]
            v = shard_db._motions[oid].v
            assert router.route(oid, shard_db._motions[oid]) == i, (
                f"oid {oid} with |v|={abs(v)} misplaced on shard {i}"
            )


@pytest.mark.parametrize("method", ["forest", "kdtree"])
def test_both_index_methods(method):
    rng = random.Random(41)
    single = MotionDatabase(Y_MAX, V_MIN, V_MAX, method=method)
    sharded = ShardedMotionService(
        Y_MAX, V_MIN, V_MAX, shards=4, method=method
    )
    drive(rng, single, sharded, steps=80, check=full_menu_check)


def test_nearest_tie_break_is_documented_order():
    """Two objects at mirrored positions are equidistant: the smaller
    id wins, on the single database and on every shard count."""
    engines = [MotionDatabase(Y_MAX, V_MIN, V_MAX)] + [
        ShardedMotionService(Y_MAX, V_MIN, V_MAX, shards=k)
        for k in (2, 4, 7)
    ]
    for engine in engines:
        engine.register(7, 480.0, 1.0, 0.0)   # at t=10: 490, distance 10
        engine.register(3, 520.0, -1.0, 0.0)  # at t=10: 510, distance 10
    expected = engines[0].nearest(500.0, 10.0, k=2)
    assert [oid for oid, _ in expected] == [3, 7]  # tie -> smaller id
    for engine in engines[1:]:
        assert engine.nearest(500.0, 10.0, k=2) == expected


@pytest.mark.parametrize("shards", [2, 4])
def test_batch_executor_matches_sequential_oracle(shards):
    """One epoch through the BatchExecutor equals sequential replay:
    updates land first (time-ordered per shard), queries then see the
    post-update state."""
    rng = random.Random(59)
    single = MotionDatabase(Y_MAX, V_MIN, V_MAX)
    sharded = ShardedMotionService(Y_MAX, V_MIN, V_MAX, shards=shards)
    batch = []
    for oid in range(50):
        y0, v = random_motion(rng)
        batch.append(Register(oid, y0, v, 0.0))
    with BatchExecutor(sharded) as executor:
        results = executor.run(batch)
        assert all(result.ok for result in results)
        updates = []
        for _ in range(30):
            oid = rng.randrange(50)
            y0, v = random_motion(rng)
            updates.append(Report(oid, y0, v, rng.uniform(1.0, 5.0)))
        queries = [
            Within(200.0, 450.0, 6.0, 30.0),
            SnapshotAt(100.0, 300.0, 12.0),
            Nearest(500.0, 10.0, k=5),
            ProximityPairs(3.0, 6.0, 20.0),
        ]
        results = executor.run(updates + queries)
    assert all(result.ok for result in results)
    # Sequential oracle: apply the same updates in per-oid last-write
    # order (the executor sorts each shard group by timestamp).
    for op in batch:
        single.register(op.oid, op.y0, op.v, op.t0)
    for op in sorted(updates, key=lambda op: op.t0):
        single.report(op.oid, op.y0, op.v, op.t0)
    values = [result.value for result in results[len(updates):]]
    assert values[0] == single.within(200.0, 450.0, 6.0, 30.0)
    assert values[1] == single.snapshot_at(100.0, 300.0, 12.0)
    assert values[2] == single.nearest(500.0, 10.0, k=5)
    assert values[3] == single.proximity_pairs(3.0, 6.0, 20.0)
