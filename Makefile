# Convenience targets for the mobile-object indexing reproduction.

.PHONY: install test bench figures examples results clean

install:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

figures:
	python -m repro figures

examples:
	for script in examples/*.py; do echo "== $$script"; python $$script; done

results:
	python -m repro collect-results -o benchmarks/results/ALL.txt

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis
