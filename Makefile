# Convenience targets for the mobile-object indexing reproduction.

.PHONY: install check test service-smoke chaos-smoke subs-smoke batch-smoke service-tests chaos-tests subs-tests batch-tests batch-baseline durability-tests durability-smoke soak-smoke soak-tests soak-baseline rebalance-smoke rebalance-tests rebalance-baseline update-bench-smoke update-tests update-baseline parallel-smoke parallel-tests parallel-baseline serve-smoke bench figures examples results clean

install:
	python setup.py develop

# Sanity gate: compile + import, then the subscription layer's smoke
# run and suites (incremental maintenance must match the naive oracle).
check:
	python -m compileall -q src
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		python -c "import repro, repro.service"
	$(MAKE) subs-smoke
	$(MAKE) subs-tests
	$(MAKE) batch-smoke
	$(MAKE) batch-tests
	$(MAKE) durability-tests
	$(MAKE) durability-smoke
	$(MAKE) soak-smoke
	$(MAKE) soak-tests
	$(MAKE) rebalance-smoke
	$(MAKE) rebalance-tests
	$(MAKE) update-bench-smoke
	$(MAKE) update-tests
	$(MAKE) parallel-smoke
	$(MAKE) parallel-tests

test: check service-smoke
	pytest tests/

# Tiny end-to-end run of the sharded service: catches wiring breakage
# (routing, batch executor, metrics snapshot) in seconds.
service-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		python -m repro serve-bench --n 200 --shards 3 --batches 2 \
		--updates 20 --queries 10 --seed 1

# Seeded chaos run: injected faults + replication 2 + differential
# verification against a faultless single database.  Exit code 3 on
# any lost update or mismatching answer.
chaos-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		python -m repro serve-bench --n 240 --shards 3 --batches 3 \
		--updates 24 --queries 12 --seed 7 \
		--faults --replication 2 --verify

# Continuous-subscription smoke: standing queries maintained from
# crossing events must answer exactly like naive per-tick
# re-evaluation (exit 3 on divergence) at a fraction of the probes.
subs-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		python -m repro serve-bench --subscriptions --n 120 \
		--shards 3 --subs 12 --ticks 6 --updates 20 --seed 5

# Batched-query smoke: the vectorized batch path must answer
# byte-identically to the scalar loop over the same seeded workload
# (exit 3 on any divergence) while being several times faster.
batch-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		python -m repro serve-bench --batch --n 1500 --queries 300 \
		--shards 3 --batch-size 100 --seed 5

# The vectorized kernel / columnar store / batch-query suites alone
# (property-based scalar agreement, cache semantics, executor and
# fault-tolerance integration).
batch-tests:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		pytest -m batch

# Regenerate the committed batch-throughput baseline at the
# acceptance scale (10k objects, 1k queries).
batch-baseline:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		python -m repro serve-bench --batch --n 10000 --queries 1000 \
		--shards 4 --batch-size 250 --seed 42 \
		--batch-json benchmarks/results/BENCH_batch.json

# The continuous-subscription suites alone (units, stateful
# differential, concurrency churn, chaos recovery).
subs-tests:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		pytest -m subscription

# The service differential + concurrency + metrics suites alone.
service-tests:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		pytest tests/test_service_differential.py \
		tests/test_service_concurrency.py \
		tests/test_service_metrics.py

# The fault-injection / recovery suites (chaos differential, WAL
# crash-at-every-point, injector/breaker/retry units).
chaos-tests:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		pytest tests/test_replication.py tests/test_wal_recovery.py \
		tests/test_faults.py

# The on-disk durability suites: DurableLog / CheckpointStore units,
# the crash-point × fsync-policy recovery matrix, hypothesis damage
# properties, and the SIGKILL smoke drill (all real files).
durability-tests:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		pytest -m durability

# The SIGKILL drill alone: spawn a WAL-backed service subprocess,
# kill it mid-write-storm, recover from the directory, and
# differential-check that no acknowledged update was lost (exit 1 on
# any loss or invented state).
durability-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		python -m repro.storage.crashdrill --objects 30 \
		--kill-after-acks 150 --seed 42

# Soak smoke: a small production-shaped mixed run (city scenario,
# churn, batched queries, live subscriptions, one crash/recovery)
# cross-checked against the naive oracle every other tick.  Exit 3 on
# any divergence; deterministic schedule digest for a fixed seed.
soak-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		python -m repro serve-bench --soak --scenario city --n 300 \
		--ticks 6 --shards 3 --replication 2 --subs 8 --queries 24 \
		--arrivals 3 --departures 2 --crashes 1 --check-every 2 --seed 9

# The scenario-generator + soak-harness suites (seed plumbing,
# stream legality, hypothesis properties, determinism, concurrency,
# durable restart convergence).
soak-tests:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		pytest -m soak
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		pytest tests/test_scenarios.py tests/test_scenarios_properties.py

# Regenerate the committed soak baseline at the acceptance scale:
# 100k objects, multi-threaded mixed workload over a 4-wide worker
# pool, >=20 subscriptions, 2 crash/recovery cycles plus a durable
# WAL restart, zero tolerated divergences.
soak-baseline:
	rm -rf .soak-wal
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		python -m repro serve-bench --soak --scenario city --n 100000 \
		--ticks 12 --shards 4 --replication 2 --threads 4 --subs 24 \
		--queries 64 --batch-size 16 --arrivals 40 --departures 25 \
		--crashes 2 --restarts 1 --wal-dir .soak-wal --fsync batch:32 \
		--check-every 3 --seed 42 --pool-workers 4 \
		--soak-json benchmarks/results/BENCH_soak.json
	rm -rf .soak-wal

# Live-repartitioning smoke: an adversarially skewed band-routed
# population is re-cut and migrated by the rebalance controller under
# a concurrent update burst, then differentially verified against a
# faultless single database (exit 3 on any divergence or lost object).
rebalance-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		python -m repro serve-bench --rebalance --n 800 --shards 4 \
		--updates 200 --seed 5 --verify

# The rebalancing suites alone: router/ownership fencing units, the
# double-write query window, the crash-at-every-migration-point ×
# fsync matrix, destination-death aborts, and the mid-soak run.
rebalance-tests:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		pytest -m rebalance

# Regenerate the committed rebalance baseline at the acceptance scale
# (10k objects, two controller passes around an update burst).
rebalance-baseline:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		python -m repro serve-bench --rebalance --n 10000 --shards 4 \
		--updates 2000 --seed 42 --verify \
		--rebalance-json benchmarks/results/BENCH_rebalance.json

# Worker-pool smoke: a small scaling sweep (in-process oracle vs a
# 2-wide process pool over shared-memory columns) with every pooled
# answer differentially verified (exit 3 on any divergence), plus the
# async frontend's overload drill.
parallel-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		python -m repro serve-bench --parallel --n 2000 --queries 90 \
		--shards 3 --batch-size 30 --pool-workers 0 2 --clients 6 \
		--requests 10 --queue-depth 8 --seed 5

# The parallel-tier suites alone: shared-memory column contract +
# seqlock snapshots, growth-policy regressions, pool byte-identity
# across widths x shards x seeds, worker-SIGKILL chaos, the asyncio
# frontend's admission/shed/drain semantics, and segment cleanup.
parallel-tests:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		pytest -m parallel

# Regenerate the committed worker-pool scaling baseline at the
# acceptance scale (100k objects; 0 = the in-process oracle leg).
# The report records host cores: the pooled legs only show real
# speedup when the machine has cores to put the shards on.
parallel-baseline:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		python -m repro serve-bench --parallel --n 100000 \
		--queries 600 --shards 4 --batch-size 50 \
		--pool-workers 0 1 2 4 --seed 42 \
		--clients 48 --requests 20 --queue-depth 16 \
		--parallel-json benchmarks/results/BENCH_parallel.json

# Concurrent-client serving drill against the admission-controlled
# asyncio frontend: bounded accepted-request p99, explicit shedding.
serve-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		python -m repro serve-bench --serve --n 2000 --queries 60 \
		--shards 3 --pool-workers 2 --clients 12 --requests 25 \
		--queue-depth 8 --seed 5

# Batched write-path smoke: apply_batch must produce byte-identical
# outcomes, catalogs and probe answers to the scalar write calls over
# the same seeded op stream (exit 3 on any divergence) while being
# several times faster.
update-bench-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		python -m repro serve-bench --update-bench --n 1500 \
		--shards 3 --seed 5

# The vectorized write-path suites alone: the differential wall
# (seeds x shard counts, duplicate-oid ordering, WAL streams,
# subscription deltas), bulk-build property tests, and the
# write-batch crash-point chaos matrix.
update-tests:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		pytest -m writebatch

# Regenerate the committed update-throughput baseline at the
# acceptance scale (10k objects, two report rounds with churn).
update-baseline:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		python -m repro serve-bench --update-bench --n 10000 \
		--seed 42 --update-json benchmarks/results/BENCH_update.json

bench:
	pytest benchmarks/ --benchmark-only

figures:
	python -m repro figures

examples:
	for script in examples/*.py; do echo "== $$script"; python $$script; done

results:
	python -m repro collect-results -o benchmarks/results/ALL.txt

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis
