# Convenience targets for the mobile-object indexing reproduction.

.PHONY: install check test service-smoke chaos-smoke service-tests chaos-tests bench figures examples results clean

install:
	python setup.py develop

# Fast sanity gate: everything must at least compile.
check:
	python -m compileall -q src
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		python -c "import repro, repro.service"

test: check service-smoke
	pytest tests/

# Tiny end-to-end run of the sharded service: catches wiring breakage
# (routing, batch executor, metrics snapshot) in seconds.
service-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		python -m repro serve-bench --n 200 --shards 3 --batches 2 \
		--updates 20 --queries 10 --seed 1

# Seeded chaos run: injected faults + replication 2 + differential
# verification against a faultless single database.  Exit code 3 on
# any lost update or mismatching answer.
chaos-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		python -m repro serve-bench --n 240 --shards 3 --batches 3 \
		--updates 24 --queries 12 --seed 7 \
		--faults --replication 2 --verify

# The service differential + concurrency + metrics suites alone.
service-tests:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		pytest tests/test_service_differential.py \
		tests/test_service_concurrency.py \
		tests/test_service_metrics.py

# The fault-injection / recovery suites (chaos differential, WAL
# crash-at-every-point, injector/breaker/retry units).
chaos-tests:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		pytest tests/test_replication.py tests/test_wal_recovery.py \
		tests/test_faults.py

bench:
	pytest benchmarks/ --benchmark-only

figures:
	python -m repro figures

examples:
	for script in examples/*.py; do echo "== $$script"; python $$script; done

results:
	python -m repro collect-results -o benchmarks/results/ALL.txt

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis
