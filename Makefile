# Convenience targets for the mobile-object indexing reproduction.

.PHONY: install test service-smoke service-tests bench figures examples results clean

install:
	python setup.py develop

test: service-smoke
	pytest tests/

# Tiny end-to-end run of the sharded service: catches wiring breakage
# (routing, batch executor, metrics snapshot) in seconds.
service-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		python -m repro serve-bench --n 200 --shards 3 --batches 2 \
		--updates 20 --queries 10 --seed 1

# The service differential + concurrency + metrics suites alone.
service-tests:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		pytest tests/test_service_differential.py \
		tests/test_service_concurrency.py \
		tests/test_service_metrics.py

bench:
	pytest benchmarks/ --benchmark-only

figures:
	python -m repro figures

examples:
	for script in examples/*.py; do echo "== $$script"; python $$script; done

results:
	python -m repro collect-results -o benchmarks/results/ALL.txt

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis
